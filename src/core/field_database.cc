#include "core/field_database.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "field/interpolation.h"
#include "field/isoband.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "plan/operators.h"
#include "storage/io_sink.h"

namespace fielddb {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Facade-level instruments. Looked up once; the registry keeps the
/// pointers stable for the process lifetime.
struct DbMetrics {
  Counter* value_queries;
  Counter* isoline_queries;
  Counter* point_queries;
  Counter* index_fallbacks;
  Counter* scrub_pages;
  Counter* scrub_corrupt_pages;
  Counter* zonemap_cells_skipped;
  Counter* plans_scan;
  Counter* plans_index;
  Histogram* query_wall_us;

  static const DbMetrics& Get() {
    static const DbMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Default();
      return DbMetrics{reg.GetCounter("db.value_queries"),
                       reg.GetCounter("db.isoline_queries"),
                       reg.GetCounter("db.point_queries"),
                       reg.GetCounter("db.index_fallbacks"),
                       reg.GetCounter("db.scrub_pages"),
                       reg.GetCounter("db.scrub_corrupt_pages"),
                       reg.GetCounter("db.zonemap_cells_skipped"),
                       reg.GetCounter("db.plans_scan"),
                       reg.GetCounter("db.plans_index"),
                       reg.GetHistogram("db.query_wall_us")};
    }();
    return m;
  }
};

}  // namespace

// Best-effort close of the WAL and pool lives in ~FieldEngine.
FieldDatabase::~FieldDatabase() = default;

StatusOr<std::unique_ptr<FieldDatabase>> FieldDatabase::Build(
    const Field& field, const FieldDatabaseOptions& options) {
  auto db = std::unique_ptr<FieldDatabase>(new FieldDatabase());
  FieldEngine::BuildConfig build_config;
  build_config.page_size = options.page_size;
  build_config.pool_pages = options.pool_pages;
  build_config.readahead_pages = options.readahead_pages;
  build_config.page_file_factory = options.page_file_factory;
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForBuild(build_config));
  BufferPool* const pool = db->engine_.pool();
  db->value_range_ = field.ValueRange();
  db->domain_ = field.Domain();

  switch (options.method) {
    case IndexMethod::kLinearScan: {
      StatusOr<std::unique_ptr<LinearScanIndex>> idx =
          LinearScanIndex::Build(pool, field);
      if (!idx.ok()) return idx.status();
      db->index_ = std::move(idx).value();
      break;
    }
    case IndexMethod::kIAll: {
      StatusOr<std::unique_ptr<IAllIndex>> idx =
          IAllIndex::Build(pool, field, options.iall);
      if (!idx.ok()) return idx.status();
      db->index_ = std::move(idx).value();
      break;
    }
    case IndexMethod::kIHilbert: {
      IHilbertIndex::Options ihopts = options.ihilbert;
      if (options.build_memory_budget_bytes > 0) {
        ihopts.build_memory_budget_bytes = options.build_memory_budget_bytes;
      }
      StatusOr<std::unique_ptr<IHilbertIndex>> idx =
          IHilbertIndex::Build(pool, field, ihopts);
      if (!idx.ok()) return idx.status();
      db->index_ = std::move(idx).value();
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      StatusOr<std::unique_ptr<IntervalQuadtreeIndex>> idx =
          IntervalQuadtreeIndex::Build(pool, field, options.iqt);
      if (!idx.ok()) return idx.status();
      db->index_ = std::move(idx).value();
      break;
    }
    case IndexMethod::kRowIp: {
      StatusOr<std::unique_ptr<RowIpIndex>> idx =
          RowIpIndex::Build(pool, field);
      if (!idx.ok()) return idx.status();
      db->index_ = std::move(idx).value();
      break;
    }
  }

  if (options.build_spatial_index) {
    // 2-D R*-tree over cell MBRs, packed in store order (Hilbert order
    // for I-Hilbert: exactly the Kamel–Faloutsos packing).
    const CellStore& store = db->index_->cell_store();
    std::vector<RTreeEntry<2>> entries;
    entries.reserve(store.size());
    FIELDDB_RETURN_IF_ERROR(store.ScanWith(
        0, store.size(), [&](uint64_t pos, const CellRecord& cell) {
          RTreeEntry<2> e;
          e.box = BoxFromRect(cell.Bounds());
          e.a = pos;
          entries.push_back(e);
          return true;
        }));
    StatusOr<RStarTree<2>> spatial =
        RStarTree<2>::BulkLoad(pool, entries);
    if (!spatial.ok()) return spatial.status();
    db->spatial_.emplace(std::move(spatial).value());
  }
  db->InitPlanner(options.planner_mode);
  if (options.wal_mode != WalMode::kOff) {
    FIELDDB_RETURN_IF_ERROR(
        db->engine_.ArmWal(options.wal_path, options.wal_mode));
  }
  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    if (options.wal_mode != WalMode::kOff) {
      db->LogEvent(EventLog::Event("wal_mode_transition")
                       .Add("from", WalModeName(WalMode::kOff))
                       .Add("to", WalModeName(options.wal_mode))
                       .Add("at", "build"));
    }
  }
  pool->ResetStats();
  return db;
}

Status FieldDatabase::AttachEventLog(const std::string& path,
                                     double slow_query_threshold_ms) {
  return engine_.AttachEventLog(path, slow_query_threshold_ms);
}

void FieldDatabase::LogEvent(const EventLog::Event& event) const {
  // Append errors are counted by the log itself
  // (obs.event_log_append_errors); a query must never fail because its
  // telemetry could not be written.
  engine_.LogEvent(event);
}

void FieldDatabase::MaybeLogSlowQuery(const ValueInterval& query,
                                      const QueryStats& stats) const {
  if (engine_.event_log() == nullptr) return;
  const double wall_ms = stats.wall_seconds * 1000.0;
  if (wall_ms < engine_.slow_query_threshold_ms()) return;
  // Re-plan to report the decision next to what actually happened: the
  // probe is zero-I/O and deterministic, so this is the plan the query
  // ran (modulo a concurrent set_planner_mode, which callers exclude).
  const PhysicalPlan plan =
      planner_->Plan(query, planner_mode_.load(std::memory_order_relaxed));
  const double observed_disk_ms = DiskModel{}.EstimateMs(
      stats.io.sequential_reads, stats.io.random_reads());
  LogEvent(EventLog::Event("slow_query")
               .Add("wall_ms", wall_ms)
               .Add("threshold_ms", engine_.slow_query_threshold_ms())
               .Add("query_min", query.min)
               .Add("query_max", query.max)
               .Add("plan", plan.kind == PlanKind::kFusedScan
                                ? "fused_scan"
                                : "indexed_filter")
               .Add("predicted_cost_ms", plan.predicted_cost_ms)
               .Add("observed_disk_ms", observed_disk_ms)
               .Add("candidate_cells", stats.candidate_cells)
               .Add("answer_cells", stats.answer_cells)
               .Add("index_fallbacks", stats.index_fallbacks)
               .Add("logical_reads", stats.io.logical_reads)
               .Add("physical_reads", stats.io.physical_reads)
               .Add("sequential_reads", stats.io.sequential_reads)
               .Add("random_reads", stats.io.random_reads())
               .Add("evictions", stats.io.evictions));
}

void FieldDatabase::InitPlanner(PlannerMode mode) {
  planner_ = std::make_unique<QueryPlanner>(index_.get(), subfields());
  planner_mode_.store(mode, std::memory_order_relaxed);
}

Status FieldDatabase::AnswerValueQuery(const ValueInterval& query,
                                       Region* region, QueryStats* stats,
                                       QueryContext* ctx,
                                       QueryTrace* trace) const {
  const OperatorEnv env{index_.get(), ctx, trace};

  // Cost-based access-path selection, reported as its own span (no page
  // I/O: the probe reads only the subfield table or the in-memory
  // zone-map sidecar).
  PhysicalPlan plan;
  {
    ScopedSpan span(trace, "plan", &ctx->io);
    plan = planner_->Plan(query,
                          planner_mode_.load(std::memory_order_relaxed));
    span.set_items(plan.predicted_candidates);
    span.set_detail(plan.reason);
  }

  if (plan.kind == PlanKind::kFusedScan) {
    // Single pass over the whole store, estimation fused in. The zone
    // test inside the scan is exact, so candidate_cells counts the cells
    // that really intersect the query.
    DbMetrics::Get().plans_scan->Increment();
    EstimateOp estimate(query, region, stats, /*count_candidates=*/true);
    FIELDDB_RETURN_IF_ERROR(RunFuseOp(env, query, stats, estimate));
    return estimate.status();
  }

  DbMetrics::Get().plans_index->Increment();
  std::vector<PosRange>& ranges = ctx->ranges;
  ranges.clear();
  uint64_t candidates = 0;
  const Status filter = RunFilterOp(env, query, &ranges, &candidates);
  if (filter.code() == StatusCode::kCorruption) {
    // The value index is damaged but the cell store holds every answer:
    // degrade to the fused scan so the query still returns exact
    // results, and record the fallback for observability.
    index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    DbMetrics::Get().index_fallbacks->Increment();
    LogEvent(EventLog::Event("corruption_fallback")
                 .Add("query_min", query.min)
                 .Add("query_max", query.max)
                 .Add("error", filter.ToString()));
    stats->index_fallbacks = 1;
    stats->candidate_cells = 0;
    if (region != nullptr) region->pieces.clear();
    EstimateOp estimate(query, region, stats, /*count_candidates=*/true);
    FIELDDB_RETURN_IF_ERROR(RunFuseOp(env, query, stats, estimate));
    return estimate.status();
  }
  FIELDDB_RETURN_IF_ERROR(filter);
  stats->candidate_cells = candidates;

  // Fetch only the candidate runs; estimate each zone-matching cell.
  EstimateOp estimate(query, region, stats, /*count_candidates=*/false);
  FIELDDB_RETURN_IF_ERROR(RunScanOp(env, query, ranges.data(), ranges.size(),
                                    /*fetch_detail=*/nullptr, stats,
                                    estimate));
  return estimate.status();
}

Status FieldDatabase::ValueQuery(const ValueInterval& query,
                                 ValueQueryResult* out) const {
  QueryContext ctx;
  return ValueQuery(query, out, &ctx);
}

Status FieldDatabase::ValueQuery(const ValueInterval& query,
                                 ValueQueryResult* out,
                                 QueryContext* ctx) const {
  if (query.IsEmpty()) {
    return Status::InvalidArgument("empty query interval");
  }
  out->region.pieces.clear();
  out->stats = QueryStats{};
  DbMetrics::Get().value_queries->Increment();
  ctx->io.Reset();
  ScopedIoSink sink(&ctx->io);
  const auto t0 = Clock::now();

  FIELDDB_RETURN_IF_ERROR(
      AnswerValueQuery(query, &out->region, &out->stats, ctx));

  out->stats.wall_seconds = SecondsSince(t0);
  out->stats.io = ctx->io;
  DbMetrics::Get().query_wall_us->Record(out->stats.wall_seconds * 1e6);
  MaybeLogSlowQuery(query, out->stats);
  return Status::OK();
}

Status FieldDatabase::ValueQueryStats(const ValueInterval& query,
                                      QueryStats* out) const {
  QueryContext ctx;
  return ValueQueryStats(query, out, &ctx);
}

Status FieldDatabase::ValueQueryStats(const ValueInterval& query,
                                      QueryStats* out,
                                      QueryContext* ctx) const {
  if (query.IsEmpty()) {
    return Status::InvalidArgument("empty query interval");
  }
  *out = QueryStats{};
  DbMetrics::Get().value_queries->Increment();
  ctx->io.Reset();
  ScopedIoSink sink(&ctx->io);
  const auto t0 = Clock::now();

  FIELDDB_RETURN_IF_ERROR(AnswerValueQuery(query, nullptr, out, ctx));

  out->wall_seconds = SecondsSince(t0);
  out->io = ctx->io;
  DbMetrics::Get().query_wall_us->Record(out->wall_seconds * 1e6);
  MaybeLogSlowQuery(query, *out);
  return Status::OK();
}

Status FieldDatabase::AnswerShared(const std::vector<ValueInterval>& queries,
                                   std::vector<Region>* regions,
                                   std::vector<QueryStats>* stats,
                                   QueryContext* ctx) const {
  const size_t n = queries.size();
  // The members' hull is the sweep's predicate: every cell matching any
  // member matches the envelope, so one envelope pass sees them all.
  ValueInterval envelope;  // default = Hull identity
  for (const ValueInterval& q : queries) envelope.Extend(q);

  TraceScope span("scan.shared", "exec");
  span.set_items(n);

  const OperatorEnv env{index_.get(), ctx, nullptr};
  const PhysicalPlan plan = planner_->Plan(
      envelope, planner_mode_.load(std::memory_order_relaxed));

  // Demultiplexing visitor: each zone-matching cell of the envelope is
  // tested against every member exactly (cell.Interval() IS the zone
  // entry), so per-member candidate/answer counts — and the member's
  // Region, built in the same storage order a lone query would visit —
  // are bit-identical to isolated execution.
  Status estimate_status;
  auto visit = [&](uint64_t pos, const CellRecord& cell) {
    (void)pos;
    const ValueInterval iv = cell.Interval();
    for (size_t q = 0; q < n; ++q) {
      if (!iv.Intersects(queries[q])) continue;
      ++(*stats)[q].candidate_cells;
      if (regions != nullptr) {
        StatusOr<size_t> pieces =
            CellIsoband(cell, queries[q], &(*regions)[q]);
        if (!pieces.ok()) {
          estimate_status = pieces.status();
          return false;
        }
        if (*pieces > 0) {
          ++(*stats)[q].answer_cells;
          (*stats)[q].region_pieces += *pieces;
        }
      } else {
        ++(*stats)[q].answer_cells;
      }
    }
    return true;
  };

  if (plan.kind == PlanKind::kIndexedFilter) {
    std::vector<PosRange>& ranges = ctx->ranges;
    ranges.clear();
    uint64_t candidates = 0;
    const Status filter = RunFilterOp(env, envelope, &ranges, &candidates);
    if (filter.code() == StatusCode::kCorruption) {
      // Same degradation as the single-query path: the store holds the
      // truth, so the whole group reruns as the fused sweep. Counted
      // once (one sweep fell back), reported by every member.
      index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      DbMetrics::Get().index_fallbacks->Increment();
      LogEvent(EventLog::Event("corruption_fallback")
                   .Add("query_min", envelope.min)
                   .Add("query_max", envelope.max)
                   .Add("shared_members", static_cast<uint64_t>(n))
                   .Add("error", filter.ToString()));
      for (size_t q = 0; q < n; ++q) {
        (*stats)[q] = QueryStats{};
        (*stats)[q].index_fallbacks = 1;
        if (regions != nullptr) (*regions)[q].pieces.clear();
      }
      DbMetrics::Get().plans_scan->Increment();
      FIELDDB_RETURN_IF_ERROR(RunFuseOp(env, envelope, &(*stats)[0], visit));
      return estimate_status;
    }
    FIELDDB_RETURN_IF_ERROR(filter);
    DbMetrics::Get().plans_index->Increment();
    FIELDDB_RETURN_IF_ERROR(RunScanOp(env, envelope, ranges.data(),
                                      ranges.size(), "shared_fetch",
                                      &(*stats)[0], visit));
    return estimate_status;
  }

  DbMetrics::Get().plans_scan->Increment();
  FIELDDB_RETURN_IF_ERROR(RunFuseOp(env, envelope, &(*stats)[0], visit));
  return estimate_status;
}

namespace {

Status ValidateSharedBatch(const std::vector<ValueInterval>& queries) {
  for (const ValueInterval& q : queries) {
    if (q.IsEmpty()) return Status::InvalidArgument("empty query interval");
  }
  return Status::OK();
}

}  // namespace

Status FieldDatabase::SharedValueQueryStats(
    const std::vector<ValueInterval>& queries,
    std::vector<QueryStats>* out) const {
  QueryContext ctx;
  return SharedValueQueryStats(queries, out, &ctx);
}

Status FieldDatabase::SharedValueQueryStats(
    const std::vector<ValueInterval>& queries, std::vector<QueryStats>* out,
    QueryContext* ctx) const {
  FIELDDB_RETURN_IF_ERROR(ValidateSharedBatch(queries));
  out->assign(queries.size(), QueryStats{});
  if (queries.empty()) return Status::OK();
  if (queries.size() == 1) {
    return ValueQueryStats(queries[0], &(*out)[0], ctx);
  }
  DbMetrics::Get().value_queries->Increment(queries.size());
  ctx->io.Reset();
  ScopedIoSink sink(&ctx->io);
  const auto t0 = Clock::now();

  FIELDDB_RETURN_IF_ERROR(AnswerShared(queries, nullptr, out, ctx));

  const double wall = SecondsSince(t0);
  DbMetrics::Get().query_wall_us->Record(wall * 1e6);
  for (size_t q = 0; q < queries.size(); ++q) {
    (*out)[q].wall_seconds = wall;
    // Leader-charged attribution: the sweep's I/O lands on member 0,
    // the riders report zero — so the members sum to exactly one sweep.
    if (q == 0) (*out)[q].io = ctx->io;
    MaybeLogSlowQuery(queries[q], (*out)[q]);
  }
  return Status::OK();
}

Status FieldDatabase::SharedValueQuery(
    const std::vector<ValueInterval>& queries,
    std::vector<ValueQueryResult>* out) const {
  QueryContext ctx;
  return SharedValueQuery(queries, out, &ctx);
}

Status FieldDatabase::SharedValueQuery(
    const std::vector<ValueInterval>& queries,
    std::vector<ValueQueryResult>* out, QueryContext* ctx) const {
  FIELDDB_RETURN_IF_ERROR(ValidateSharedBatch(queries));
  out->assign(queries.size(), ValueQueryResult{});
  if (queries.empty()) return Status::OK();
  if (queries.size() == 1) {
    return ValueQuery(queries[0], &(*out)[0], ctx);
  }
  DbMetrics::Get().value_queries->Increment(queries.size());
  ctx->io.Reset();
  ScopedIoSink sink(&ctx->io);
  const auto t0 = Clock::now();

  std::vector<Region> regions(queries.size());
  std::vector<QueryStats> stats(queries.size());
  FIELDDB_RETURN_IF_ERROR(AnswerShared(queries, &regions, &stats, ctx));

  const double wall = SecondsSince(t0);
  DbMetrics::Get().query_wall_us->Record(wall * 1e6);
  for (size_t q = 0; q < queries.size(); ++q) {
    (*out)[q].region = std::move(regions[q]);
    (*out)[q].stats = std::move(stats[q]);
    (*out)[q].stats.wall_seconds = wall;
    if (q == 0) (*out)[q].stats.io = ctx->io;
    MaybeLogSlowQuery(queries[q], (*out)[q].stats);
  }
  return Status::OK();
}

Status FieldDatabase::TracedValueQueryStats(const ValueInterval& query,
                                            QueryStats* out) const {
  QueryContext ctx;
  return TracedValueQueryStats(query, out, &ctx);
}

Status FieldDatabase::TracedValueQueryStats(const ValueInterval& query,
                                            QueryStats* out,
                                            QueryContext* ctx) const {
  if (query.IsEmpty()) {
    return Status::InvalidArgument("empty query interval");
  }
  *out = QueryStats{};
  out->trace = std::make_shared<QueryTrace>();
  DbMetrics::Get().value_queries->Increment();
  ctx->io.Reset();
  ScopedIoSink sink(&ctx->io);
  const auto t0 = Clock::now();

  FIELDDB_RETURN_IF_ERROR(
      AnswerValueQuery(query, nullptr, out, ctx, out->trace.get()));

  out->wall_seconds = SecondsSince(t0);
  out->io = ctx->io;
  DbMetrics::Get().query_wall_us->Record(out->wall_seconds * 1e6);
  MaybeLogSlowQuery(query, *out);
  return Status::OK();
}

namespace {

double IntervalDistance(const ValueInterval& iv, double w) {
  if (w < iv.min) return iv.min - w;
  if (w > iv.max) return w - iv.max;
  return 0.0;
}

}  // namespace

Status FieldDatabase::NearestValueQuery(double w, size_t k,
                                        std::vector<NearestCell>* out) const {
  out->clear();
  if (k == 0) return Status::OK();
  const CellStore& store = index_->cell_store();

  // Max-heap of the current k best (worst on top).
  const auto worse = [](const NearestCell& x, const NearestCell& y) {
    return x.distance < y.distance;
  };
  std::vector<NearestCell> best;
  const auto offer = [&](const CellRecord& cell) {
    const double d = IntervalDistance(cell.Interval(), w);
    if (best.size() < k) {
      best.push_back(NearestCell{cell.id, d, cell.Interval()});
      std::push_heap(best.begin(), best.end(), worse);
    } else if (d < best.front().distance) {
      std::pop_heap(best.begin(), best.end(), worse);
      best.back() = NearestCell{cell.id, d, cell.Interval()};
      std::push_heap(best.begin(), best.end(), worse);
    }
  };

  if (index_->method() == IndexMethod::kIAll) {
    const auto& tree =
        static_cast<const IAllIndex*>(index_.get())->tree();
    std::vector<RStarTree<1>::Neighbor> neighbors;
    FIELDDB_RETURN_IF_ERROR(tree.NearestNeighbors({w}, k, &neighbors));
    CellRecord cell;
    for (const auto& n : neighbors) {
      FIELDDB_RETURN_IF_ERROR(store.Get(n.entry.a, &cell));
      out->push_back(NearestCell{cell.id, std::sqrt(n.distance2),
                                 cell.Interval()});
    }
    return Status::OK();
  }

  if (const std::vector<Subfield>* sfs = subfields(); sfs != nullptr) {
    // Visit subfields in ascending interval distance; stop once the
    // next subfield cannot beat the current kth best.
    std::vector<std::pair<double, const Subfield*>> ordered;
    ordered.reserve(sfs->size());
    for (const Subfield& sf : *sfs) {
      ordered.emplace_back(IntervalDistance(sf.interval, w), &sf);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [dist, sf] : ordered) {
      if (best.size() == k && dist > best.front().distance) break;
      FIELDDB_RETURN_IF_ERROR(
          store.ScanWith(sf->start, sf->end,
                     [&](uint64_t, const CellRecord& cell) {
                       offer(cell);
                       return true;
                     }));
    }
  } else {
    FIELDDB_RETURN_IF_ERROR(
        store.ScanWith(0, store.size(), [&](uint64_t, const CellRecord& cell) {
          offer(cell);
          return true;
        }));
  }

  std::sort_heap(best.begin(), best.end(), worse);
  *out = std::move(best);
  return Status::OK();
}

Status FieldDatabase::IsolineQuery(double level,
                                   IsolineQueryResult* out) const {
  out->isoline.polylines.clear();
  out->stats = QueryStats{};
  DbMetrics::Get().isoline_queries->Increment();
  QueryContext ctx;
  ScopedIoSink sink(&ctx.io);
  const auto t0 = Clock::now();

  const ValueInterval query{level, level};
  std::vector<IsoSegment> segments;
  Status inner = Status::OK();
  const auto visit_cell = [&](uint64_t, const CellRecord& cell) {
    StatusOr<size_t> added = CellIsolineSegments(cell, level, &segments);
    if (!added.ok()) {
      inner = added.status();
      return false;
    }
    if (*added > 0) ++out->stats.answer_cells;
    return true;
  };
  const auto counting_visit = [&](uint64_t pos, const CellRecord& cell) {
    ++out->stats.candidate_cells;
    return visit_cell(pos, cell);
  };

  // The same cost-based plan selection as a value query, made with the
  // degenerate interval [level, level] (the zone test then is exactly
  // Contains). The fused scan reads every store page once; it is also
  // the degraded path when the value index turns out to be corrupt.
  const OperatorEnv env{index_.get(), &ctx, nullptr};
  const PhysicalPlan plan =
      planner_->Plan(query, planner_mode_.load(std::memory_order_relaxed));
  if (plan.kind == PlanKind::kFusedScan) {
    DbMetrics::Get().plans_scan->Increment();
    FIELDDB_RETURN_IF_ERROR(
        RunFuseOp(env, query, &out->stats, counting_visit));
    FIELDDB_RETURN_IF_ERROR(inner);
  } else {
    DbMetrics::Get().plans_index->Increment();
    std::vector<PosRange>& ranges = ctx.ranges;
    ranges.clear();
    uint64_t candidates = 0;
    const Status filter = RunFilterOp(env, query, &ranges, &candidates);
    if (filter.code() == StatusCode::kCorruption) {
      index_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      DbMetrics::Get().index_fallbacks->Increment();
      out->stats.index_fallbacks = 1;
      FIELDDB_RETURN_IF_ERROR(
          RunFuseOp(env, query, &out->stats, counting_visit));
      FIELDDB_RETURN_IF_ERROR(inner);
    } else {
      FIELDDB_RETURN_IF_ERROR(filter);
      out->stats.candidate_cells = candidates;
      FIELDDB_RETURN_IF_ERROR(RunScanOp(env, query, ranges.data(),
                                        ranges.size(),
                                        /*fetch_detail=*/nullptr,
                                        &out->stats, visit_cell));
      FIELDDB_RETURN_IF_ERROR(inner);
    }
  }
  out->isoline = AssembleIsoline(segments);
  out->stats.region_pieces = out->isoline.polylines.size();
  out->stats.wall_seconds = SecondsSince(t0);
  out->stats.io = ctx.io;
  return Status::OK();
}

Status FieldDatabase::ValidateUpdate(CellId id,
                                     const std::vector<double>& values) const {
  const CellStore& store = index_->cell_store();
  if (id >= store.size()) {
    return Status::OutOfRange("no such cell");
  }
  CellRecord cell;
  FIELDDB_RETURN_IF_ERROR(store.Get(store.PositionOf(id), &cell));
  if (values.size() != cell.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(cell.num_vertices) + " values, got " +
        std::to_string(values.size()));
  }
  return Status::OK();
}

Status FieldDatabase::UpdateCellValues(CellId id,
                                       const std::vector<double>& values) {
  if (engine_.wal() != nullptr) {
    // Write-ahead: validate (so only appliable updates are logged),
    // log, make durable per the mode, then apply. A crash after Commit
    // re-applies the frame at the next Open; a crash before loses an
    // update that was never acknowledged.
    FIELDDB_RETURN_IF_ERROR(ValidateUpdate(id, values));
    FIELDDB_RETURN_IF_ERROR(engine_.LogUpdate(id, values));
  }
  FIELDDB_RETURN_IF_ERROR(index_->UpdateCellValues(id, values));
  // Conservatively widen the cached value range (exact shrinking would
  // need a full rescan; queries only use the range for normalization).
  for (const double w : values) value_range_.Extend(w);
  return Status::OK();
}

Status FieldDatabase::UpdateCellValuesBatch(
    const std::vector<CellUpdate>& updates) {
  for (const CellUpdate& u : updates) {
    FIELDDB_RETURN_IF_ERROR(ValidateUpdate(u.id, u.values));
  }
  if (engine_.wal() != nullptr) {
    // Group commit: every frame is appended, then one Commit makes the
    // whole batch durable (a single fsync in kFsyncOnCommit).
    for (const CellUpdate& u : updates) {
      FIELDDB_RETURN_IF_ERROR(engine_.wal()->AppendUpdate(u.id, u.values));
    }
    FIELDDB_RETURN_IF_ERROR(engine_.wal()->Commit());
  }
  for (const CellUpdate& u : updates) {
    FIELDDB_RETURN_IF_ERROR(index_->UpdateCellValues(u.id, u.values));
    for (const double w : u.values) value_range_.Extend(w);
  }
  return Status::OK();
}

StatusOr<double> FieldDatabase::PointQuery(Point2 p) const {
  DbMetrics::Get().point_queries->Increment();
  const CellStore& store = index_->cell_store();
  if (spatial_.has_value()) {
    StatusOr<double> result = Status::NotFound("point outside field domain");
    FIELDDB_RETURN_IF_ERROR(
        spatial_->Search(BoxFromPoint(p), [&](const RTreeEntry<2>& e) {
          CellRecord cell;
          const Status s = store.Get(e.a, &cell);
          if (!s.ok()) {
            result = s;
            return false;
          }
          if (CellContains(cell, p)) {
            result = InterpolateCell(cell, p);
            return false;  // first containing cell answers the query
          }
          return true;
        }));
    return result;
  }
  // No spatial index: scan.
  StatusOr<double> result = Status::NotFound("point outside field domain");
  FIELDDB_RETURN_IF_ERROR(
      store.ScanWith(0, store.size(), [&](uint64_t, const CellRecord& cell) {
        if (CellContains(cell, p)) {
          result = InterpolateCell(cell, p);
          return false;
        }
        return true;
      }));
  return result;
}

StatusOr<WorkloadStats> FieldDatabase::RunWorkload(
    const std::vector<ValueInterval>& queries, bool cold_cache) const {
  WorkloadStats ws;
  ws.num_queries = static_cast<uint32_t>(queries.size());
  if (queries.empty()) return ws;
  QueryStats total;
  std::vector<double> wall_ms;
  wall_ms.reserve(queries.size());
  QueryContext ctx;  // one context reused: this loop is single-threaded
  for (const ValueInterval& q : queries) {
    if (cold_cache) {
      FIELDDB_RETURN_IF_ERROR(engine_.pool()->Clear());
    }
    QueryStats qs;
    FIELDDB_RETURN_IF_ERROR(ValueQueryStats(q, &qs, &ctx));
    total.Accumulate(qs);
    wall_ms.push_back(qs.wall_seconds * 1000.0);
  }
  FinalizeWorkloadStats(total, &wall_ms, &ws);
  return ws;
}

Status FieldDatabase::Scrub(ScrubReport* out) {
  *out = ScrubReport{};
  return engine_.ScrubPages(&out->pages_checked, &out->corrupt_pages);
}

Status FieldDatabase::Close() { return engine_.Close(); }

Status FieldDatabase::SimulateCrashForTest() {
  return engine_.SimulateCrashForTest();
}

Status FieldDatabase::ExplainValueQuery(const ValueInterval& query,
                                        ExplainResult* out) const {
  // Stamp the database's identity before validating anything: an early
  // return must not leave a default-constructed result whose method
  // (kLinearScan, the struct default) misreports the database.
  *out = ExplainResult{};
  out->method = index_->method();
  out->query = query;
  out->rtree_height = index_->build_info().tree_height;
  if (query.IsEmpty()) {
    return Status::InvalidArgument("empty query interval");
  }

  // The decision the traced run below will make, captured up front for
  // the report (planning is deterministic, so this is the same plan).
  const PhysicalPlan plan = PlanValueQuery(query);
  out->chosen_plan = plan.kind;
  out->predicted_cost_ms = plan.predicted_cost_ms;
  out->predicted_scan_cost_ms = plan.scan_cost_ms;
  out->predicted_index_cost_ms = plan.index_cost_ms;
  out->planner_reason = plan.reason;

  // EXPLAIN forces metrics on so the R*-tree descent profile is
  // recorded even when the process runs with recording disabled.
  const bool prev_enabled = MetricsRegistry::enabled();
  MetricsRegistry::set_enabled(true);
  Counter* const node_visits =
      MetricsRegistry::Default().GetCounter("rtree.node_visits");
  const uint64_t visits_before = node_visits->value();

  const Status run = [&]() -> Status {
    // Cold start, so the physical-read pattern (and its disk-model cost)
    // reflects the query itself rather than the pool's history.
    FIELDDB_RETURN_IF_ERROR(engine_.pool()->Clear());
    return TracedValueQueryStats(query, &out->stats);
  }();
  out->rtree_nodes_visited = node_visits->value() - visits_before;
  MetricsRegistry::set_enabled(prev_enabled);
  FIELDDB_RETURN_IF_ERROR(run);

  if (out->stats.candidate_cells > 0) {
    out->false_positive_ratio =
        static_cast<double>(out->stats.candidate_cells -
                            out->stats.answer_cells) /
        static_cast<double>(out->stats.candidate_cells);
  }
  out->est_disk_ms = DiskModel{}.EstimateMs(out->stats.io.sequential_reads,
                                            out->stats.io.random_reads());

  // Annotate the touched subfields. This is a post-pass (the query's
  // stats are already captured, so these store reads don't pollute it),
  // skipped when the executed plan never consulted the subfield table:
  // after a corruption fallback, and when the planner chose the fused
  // scan (the filter step didn't run).
  const std::vector<Subfield>* sfs = subfields();
  if (sfs != nullptr && out->stats.index_fallbacks == 0 &&
      out->chosen_plan == PlanKind::kIndexedFilter) {
    const CellStore& store = index_->cell_store();
    for (uint32_t id = 0; id < sfs->size(); ++id) {
      const Subfield& sf = (*sfs)[id];
      if (!sf.interval.Intersects(query)) continue;
      ExplainSubfield esf;
      esf.id = id;
      esf.start = sf.start;
      esf.end = sf.end;
      esf.interval = sf.interval;
      esf.cells = sf.end - sf.start;
      FIELDDB_RETURN_IF_ERROR(store.ScanWith(
          sf.start, sf.end, [&](uint64_t, const CellRecord& cell) {
            if (cell.Interval().Intersects(query)) ++esf.matching_cells;
            return true;
          }));
      out->subfields.push_back(esf);
    }
  }
  return Status::OK();
}

std::string FieldDatabase::ExplainResult::ToString() const {
  std::string s;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN value query [%.6g, %.6g] method=%s\n", query.min,
                query.max, IndexMethodName(method));
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "  wall_ms=%.3f candidates=%llu answers=%llu "
                "false_positive_ratio=%.4f\n",
                stats.wall_seconds * 1000.0,
                static_cast<unsigned long long>(stats.candidate_cells),
                static_cast<unsigned long long>(stats.answer_cells),
                false_positive_ratio);
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "  io: logical=%llu physical=%llu sequential=%llu "
                "random=%llu  est_disk_ms=%.2f\n",
                static_cast<unsigned long long>(stats.io.logical_reads),
                static_cast<unsigned long long>(stats.io.physical_reads),
                static_cast<unsigned long long>(stats.io.sequential_reads),
                static_cast<unsigned long long>(stats.io.random_reads()),
                est_disk_ms);
  s += buf;
  std::snprintf(buf, sizeof(buf), "  rtree: height=%u nodes_visited=%llu\n",
                rtree_height,
                static_cast<unsigned long long>(rtree_nodes_visited));
  s += buf;
  std::snprintf(buf, sizeof(buf),
                "  plan: %s predicted_ms=%.2f (scan=%.2f index=%.2f)\n",
                PlanKindName(chosen_plan), predicted_cost_ms,
                predicted_scan_cost_ms, predicted_index_cost_ms);
  s += buf;
  if (!planner_reason.empty()) {
    s += "    " + planner_reason + "\n";
  }
  if (stats.index_fallbacks > 0) {
    s += "  DEGRADED: corrupt index page; answered by full store scan\n";
  }
  if (!subfields.empty()) {
    std::snprintf(buf, sizeof(buf), "  subfields touched: %zu\n",
                  subfields.size());
    s += buf;
    for (const ExplainSubfield& sf : subfields) {
      std::snprintf(buf, sizeof(buf),
                    "    id=%u store=[%llu,%llu) cells=%llu matching=%llu "
                    "interval=[%.6g,%.6g]\n",
                    sf.id, static_cast<unsigned long long>(sf.start),
                    static_cast<unsigned long long>(sf.end),
                    static_cast<unsigned long long>(sf.cells),
                    static_cast<unsigned long long>(sf.matching_cells),
                    sf.interval.min, sf.interval.max);
      s += buf;
    }
  }
  if (stats.trace != nullptr) {
    s += "  phases:\n";
    // Indent the trace tree under this header.
    const std::string tree = stats.trace->ToString();
    size_t start = 0;
    while (start < tree.size()) {
      size_t nl = tree.find('\n', start);
      if (nl == std::string::npos) nl = tree.size();
      s += "    ";
      s.append(tree, start, nl - start);
      s += '\n';
      start = nl + 1;
    }
  }
  return s;
}

std::string FieldDatabase::ExplainResult::ToJson() const {
  std::string s = "{\"method\":";
  JsonAppendString(&s, IndexMethodName(method));
  s += ",\"query\":{\"min\":";
  JsonAppendDouble(&s, query.min);
  s += ",\"max\":";
  JsonAppendDouble(&s, query.max);
  s += "},\"wall_ms\":";
  JsonAppendDouble(&s, stats.wall_seconds * 1000.0);
  s += ",\"candidate_cells\":" + std::to_string(stats.candidate_cells);
  s += ",\"answer_cells\":" + std::to_string(stats.answer_cells);
  s += ",\"index_fallbacks\":" + std::to_string(stats.index_fallbacks);
  s += ",\"false_positive_ratio\":";
  JsonAppendDouble(&s, false_positive_ratio);
  s += ",\"io\":{\"logical_reads\":" +
       std::to_string(stats.io.logical_reads) +
       ",\"physical_reads\":" + std::to_string(stats.io.physical_reads) +
       ",\"sequential_reads\":" + std::to_string(stats.io.sequential_reads) +
       ",\"random_reads\":" + std::to_string(stats.io.random_reads()) + "}";
  s += ",\"est_disk_ms\":";
  JsonAppendDouble(&s, est_disk_ms);
  s += ",\"plan\":{\"chosen\":";
  JsonAppendString(&s, PlanKindName(chosen_plan));
  s += ",\"predicted_cost_ms\":";
  JsonAppendDouble(&s, predicted_cost_ms);
  s += ",\"scan_cost_ms\":";
  JsonAppendDouble(&s, predicted_scan_cost_ms);
  s += ",\"index_cost_ms\":";
  JsonAppendDouble(&s, predicted_index_cost_ms);
  s += ",\"reason\":";
  JsonAppendString(&s, planner_reason);
  s += "}";
  s += ",\"rtree\":{\"height\":" + std::to_string(rtree_height) +
       ",\"nodes_visited\":" + std::to_string(rtree_nodes_visited) + "}";
  s += ",\"subfields\":[";
  for (size_t i = 0; i < subfields.size(); ++i) {
    const ExplainSubfield& sf = subfields[i];
    if (i > 0) s += ',';
    s += "{\"id\":" + std::to_string(sf.id) +
         ",\"start\":" + std::to_string(sf.start) +
         ",\"end\":" + std::to_string(sf.end) +
         ",\"cells\":" + std::to_string(sf.cells) +
         ",\"matching_cells\":" + std::to_string(sf.matching_cells) +
         ",\"interval\":{\"min\":";
    JsonAppendDouble(&s, sf.interval.min);
    s += ",\"max\":";
    JsonAppendDouble(&s, sf.interval.max);
    s += "}}";
  }
  s += "]";
  if (stats.trace != nullptr) {
    s += ",\"trace\":" + stats.trace->ToJson();
  }
  s += "}";
  return s;
}

const std::vector<Subfield>* FieldDatabase::subfields() const {
  if (index_->method() == IndexMethod::kIHilbert) {
    return &static_cast<const IHilbertIndex*>(index_.get())->subfields();
  }
  if (index_->method() == IndexMethod::kIntervalQuadtree) {
    return &static_cast<const IntervalQuadtreeIndex*>(index_.get())
                ->subfields();
  }
  return nullptr;
}

}  // namespace fielddb

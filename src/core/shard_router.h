#ifndef FIELDDB_CORE_SHARD_ROUTER_H_
#define FIELDDB_CORE_SHARD_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/field_database.h"
#include "core/shard.h"
#include "obs/slo.h"

namespace fielddb {

/// Build-time configuration of a sharded database.
struct ShardRouterOptions {
  /// Contiguous Hilbert-range shards; clamped to [1, NumCells()].
  /// One per core is the intended deployment (bench_shard_scaling).
  uint32_t shards = 1;
  /// Per-shard database options (method, page size, planner mode, WAL
  /// mode, ...). pool_pages is PER SHARD: N shards own N independent
  /// pools of this size. When db.wal_mode != kOff, `wal_prefix` must
  /// name the prefix the router will be saved under — shard k then logs
  /// to `<wal_prefix>.s<k>.wal`, exactly where a later Open(wal_prefix)
  /// finds it.
  FieldDatabaseOptions db;
  std::string wal_prefix;
  /// Worker threads per shard lane (1 = the shard-per-core layout).
  size_t lane_threads = 1;
  size_t lane_queue_capacity = 256;
  /// Router-level admission control: queries beyond this many in flight
  /// block at the front door (counting the wait in
  /// router.admission_waits) instead of piling onto shard lanes.
  /// 0 = 4 * shards.
  size_t max_inflight = 0;
  /// Per-class SLO objectives; empty = SloTracker::DefaultQueryClasses.
  std::vector<SloObjective> slo_classes;
};

/// What recovery did across every shard during ShardRouter::Open.
struct RouterRecoveryReport {
  uint64_t frames_replayed = 0;
  uint64_t stale_frames = 0;
  uint64_t torn_bytes = 0;
  /// Shards whose own WAL replay re-applied at least one frame.
  uint32_t shards_with_replay = 0;
  std::vector<FieldDatabase::RecoveryReport> per_shard;
};

/// Per-query routing profile (optional out-param of the query entry
/// points): which shards the scatter touched, what each contributed.
/// per_shard is indexed by shard id; untouched shards keep
/// default-constructed stats.
struct RouterQueryProfile {
  uint32_t shards_touched = 0;
  uint32_t shards_skipped = 0;
  std::vector<QueryStats> per_shard;
};

/// The shard-per-core serving layer (DESIGN.md §18): N contiguous
/// Hilbert-range shards, each a self-contained FieldDatabase with its
/// own BufferPool, value index, zone-map sidecar and executor lane,
/// behind a cost-aware scatter/gather front end.
///
/// Routing: every query is clipped against each shard's value hull and
/// the shard planner's zero-I/O selectivity probe (Shard::MayContain);
/// only shards with a possible contribution are scattered to, each on
/// its own lane. Gather is deterministic — per-shard results merge in
/// ascending shard id, and because shard-local store order equals the
/// global Hilbert linearization restricted to the shard, the
/// concatenated Region is bit-identical to the 1-shard answer (exactly
/// identical piece order for I-Hilbert, whose store order IS the
/// linearization).
///
/// Admission control: at most max_inflight queries run concurrently;
/// excess callers block at the front door. Every admitted query is
/// recorded against the per-class SLO tracker by its width relative to
/// the router's global value range.
///
/// Threading contract: the query entry points are const and
/// thread-safe; mutations (Update*, Save, Close) require external
/// exclusion, same as FieldDatabase.
class ShardRouter {
 public:
  static StatusOr<std::unique_ptr<ShardRouter>> Build(
      const Field& field, const ShardRouterOptions& options);

  /// Persists every shard under `<prefix>.s<k>` (each the standard
  /// atomic two-rename checkpoint), then atomically renames the router
  /// catalog `<prefix>.router` (shard count, key ranges, local->global
  /// id maps) into place. The catalog is partition metadata only — it
  /// is identical across saves of the same build — so a crash between
  /// shard checkpoints leaves every shard independently consistent at
  /// its own epoch, with each shard's WAL bridging its own gap.
  Status Save(const std::string& prefix);

  struct OpenOptions {
    /// Buffer-pool frames PER SHARD.
    size_t pool_pages = 1024;
    size_t readahead_pages = BufferPool::kDefaultReadaheadPages;
    /// Applied to every shard: any mode replays that shard's WAL.
    WalMode wal_mode = WalMode::kOff;
    size_t lane_threads = 1;
    size_t lane_queue_capacity = 256;
    size_t max_inflight = 0;
    std::vector<SloObjective> slo_classes;
    /// Optional aggregate replay report (may be null).
    RouterRecoveryReport* recovery_report = nullptr;
  };

  /// Reopens a sharded database persisted by Save: reads the catalog,
  /// opens every shard (each replaying its own WAL), and rebuilds the
  /// global->(shard, local) id map from the catalog.
  static StatusOr<std::unique_ptr<ShardRouter>> Open(
      const std::string& prefix, const OpenOptions& options);

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scatter/gather value query with exact regions. Region pieces are
  /// gathered in ascending shard id (see class comment for why that is
  /// deterministic). The merged stats sum every touched shard's
  /// counters; wall_seconds is the router-level wall time.
  Status ValueQuery(const ValueInterval& query, ValueQueryResult* out,
                    RouterQueryProfile* profile = nullptr) const;

  /// Stats-only scatter/gather (the bench shape).
  Status ValueQueryStats(const ValueInterval& query, QueryStats* out,
                         RouterQueryProfile* profile = nullptr) const;

  /// Cross-shard shared-scan execution: members are clipped per shard,
  /// then each shard decides — with its own planner's
  /// CostSharedScan, the same zero-I/O costing the executor uses —
  /// whether its members run fused (one SharedValueQueryStats sweep per
  /// cost-admitted group) or split into isolated queries. Per-member
  /// stats merge across shards (leader-charged I/O within each shard's
  /// sweep, so summed member I/O equals the I/O actually issued);
  /// answers are bit-identical to isolated execution.
  Status SharedValueQueryStats(const std::vector<ValueInterval>& queries,
                               std::vector<QueryStats>* out) const;

  /// Conventional point query: shards are probed in id order; the first
  /// one whose spatial tree finds a containing cell answers. NotFound
  /// when the point is outside every shard (= outside the domain).
  StatusOr<double> PointQuery(Point2 p) const;

  /// Routes a global-id update to the owning shard (which WAL-logs it
  /// under the shard-local id).
  Status UpdateCellValues(CellId global_id,
                          const std::vector<double>& values);

  /// Batched update, partitioned by owning shard; each shard's
  /// sub-batch group-commits through that shard's WAL. Cross-shard
  /// atomicity is NOT provided: a crash can persist one shard's
  /// sub-batch and not another's (each shard is individually
  /// all-or-nothing; see DESIGN.md §18).
  Status UpdateCellValuesBatch(
      const std::vector<FieldDatabase::CellUpdate>& updates);

  /// Drains every lane and closes every shard, surfacing the first
  /// error. The router is unusable afterwards.
  Status Close();

  /// Simulated power cut on every shard (tests).
  Status SimulateCrashForTest();

  size_t num_shards() const { return shards_.size(); }
  const Shard& shard(size_t k) const { return *shards_[k]; }
  uint64_t num_cells() const { return global_map_.size(); }
  /// Hull of every shard's value range (tracks updates).
  ValueInterval value_range() const;
  /// Global domain (identical across shards).
  const Rect2& domain() const { return domain_; }
  SloTracker& slo() const { return *slo_; }

  /// Flips the planner mode on every shard.
  void set_planner_mode(PlannerMode mode);

 private:
  ShardRouter() = default;

  /// Common post-construction wiring: global map, metrics, SLO,
  /// admission bound.
  void Init(size_t max_inflight, std::vector<SloObjective> slo_classes);

  /// RAII admission slot; blocks while max_inflight are in flight.
  class AdmissionSlot {
   public:
    explicit AdmissionSlot(const ShardRouter* router);
    ~AdmissionSlot();

   private:
    const ShardRouter* router_;
  };

  void RecordSlo(const ValueInterval& query, double wall_ms) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// global cell id -> (shard id, local cell id).
  std::vector<std::pair<uint32_t, CellId>> global_map_;
  Rect2 domain_;
  std::unique_ptr<SloTracker> slo_;

  size_t max_inflight_ = 0;
  mutable std::mutex admission_mu_;
  mutable std::condition_variable admission_cv_;
  mutable size_t inflight_ = 0;

  Counter* queries_ = nullptr;          // router.queries
  Counter* shards_touched_ = nullptr;   // router.shards_touched
  Counter* shards_skipped_ = nullptr;   // router.shards_skipped
  Counter* admission_waits_ = nullptr;  // router.admission_waits
  Counter* groups_fused_ = nullptr;     // router.shared_groups_fused
  Counter* groups_split_ = nullptr;     // router.shared_groups_split
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_SHARD_ROUTER_H_

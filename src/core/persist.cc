// FieldDatabase persistence: Save writes the checksummed page file and a
// text catalog to temp paths, fsyncs, then atomically renames them over
// the previous snapshot (crash-safe: an interrupted save leaves the old
// snapshot loadable). Open validates the catalog strictly and re-attaches
// every component (cell store, value index, spatial tree) against the
// on-disk pages.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/field_database.h"
#include "core/field_engine.h"

namespace fielddb {

namespace {

// v2 bumped for the per-page [crc | epoch | page id] header framing and
// the catalog's `epoch` key; v1 files have no page headers and cannot be
// verified, so they are rejected rather than trusted.
constexpr const char* kMagic = "fielddb-meta-v2";
constexpr const char* kMagicV1 = "fielddb-meta-v1";

struct MetaData {
  uint32_t page_size = 0;
  uint32_t epoch = 0;
  int method = 0;
  uint64_t num_cells = 0;
  PageId store_first_page = 0;
  ValueInterval value_range;
  Rect2 domain;
  bool has_tree = false;
  RStarMeta tree;
  bool has_spatial = false;
  RStarMeta spatial;
  IndexBuildInfo info;
  std::vector<Subfield> subfields;
  uint64_t declared_subfields = 0;
};

void WriteRStarMeta(std::FILE* f, const char* key, const RStarMeta& m) {
  std::fprintf(f, "%s %" PRIu64 " %u %" PRIu64 " %" PRIu64 "\n", key,
               m.root, m.height, m.size, m.num_nodes);
}

Status WriteMeta(const std::string& path, const MetaData& meta) {
  return WriteCatalogFile(path, [&](std::FILE* f) {
  std::fprintf(f, "%s\n", kMagic);
  std::fprintf(f, "page_size %u\n", meta.page_size);
  std::fprintf(f, "epoch %u\n", meta.epoch);
  std::fprintf(f, "method %d\n", meta.method);
  std::fprintf(f, "num_cells %" PRIu64 "\n", meta.num_cells);
  std::fprintf(f, "store_first_page %" PRIu64 "\n", meta.store_first_page);
  std::fprintf(f, "value_range %.17g %.17g\n", meta.value_range.min,
               meta.value_range.max);
  std::fprintf(f, "domain %.17g %.17g %.17g %.17g\n", meta.domain.lo.x,
               meta.domain.lo.y, meta.domain.hi.x, meta.domain.hi.y);
  std::fprintf(f, "build_entries %" PRIu64 "\n",
               meta.info.num_index_entries);
  if (meta.has_tree) WriteRStarMeta(f, "tree", meta.tree);
  if (meta.has_spatial) WriteRStarMeta(f, "spatial", meta.spatial);
  std::fprintf(f, "subfields %zu\n", meta.subfields.size());
  for (const Subfield& sf : meta.subfields) {
    std::fprintf(f, "sf %" PRIu64 " %" PRIu64 " %.17g %.17g %.17g\n",
                 sf.start, sf.end, sf.interval.min, sf.interval.max,
                 sf.sum_interval_sizes);
  }
    return true;
  });
}

/// Numeric-range validation after parsing. The parser only proves the
/// catalog is well-formed text; this proves the values can be acted on
/// without feeding garbage (zero page sizes, NaN ranges, inverted
/// subfields) into the storage layer. kCorruption names the bad key.
Status ValidateMeta(const MetaData& meta, const std::string& path) {
  const auto bad = [&](const char* key) {
    return Status::Corruption("catalog " + path + ": invalid value for '" +
                              key + "'");
  };
  if (meta.page_size == 0 || meta.page_size > (1u << 26)) {
    return bad("page_size");
  }
  if (meta.method < 0 ||
      meta.method > static_cast<int>(IndexMethod::kRowIp)) {
    return bad("method");
  }
  if (!std::isfinite(meta.value_range.min) ||
      !std::isfinite(meta.value_range.max) ||
      meta.value_range.min > meta.value_range.max) {
    return bad("value_range");
  }
  if (!std::isfinite(meta.domain.lo.x) || !std::isfinite(meta.domain.lo.y) ||
      !std::isfinite(meta.domain.hi.x) || !std::isfinite(meta.domain.hi.y)) {
    return bad("domain");
  }
  if (meta.declared_subfields != meta.subfields.size()) {
    return bad("subfields");
  }
  for (const Subfield& sf : meta.subfields) {
    if (sf.start > sf.end || sf.end > meta.num_cells) return bad("sf");
    if (!std::isfinite(sf.interval.min) || !std::isfinite(sf.interval.max) ||
        sf.interval.min > sf.interval.max ||
        !std::isfinite(sf.sum_interval_sizes)) {
      return bad("sf");
    }
  }
  return Status::OK();
}

StatusOr<MetaData> ReadMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot read " + path);
  MetaData meta;
  char magic[64] = {};
  if (std::fscanf(f, "%63s", magic) != 1) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  if (std::string(magic) == kMagicV1) {
    std::fclose(f);
    return Status::Corruption(
        "unsupported v1 catalog (no page checksums) in " + path +
        "; re-save with this version");
  }
  if (std::string(magic) != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  char key[64];
  bool ok = true;
  while (ok && std::fscanf(f, "%63s", key) == 1) {
    const std::string k = key;
    if (k == "page_size") {
      ok = std::fscanf(f, "%u", &meta.page_size) == 1;
    } else if (k == "epoch") {
      ok = std::fscanf(f, "%u", &meta.epoch) == 1;
    } else if (k == "method") {
      ok = std::fscanf(f, "%d", &meta.method) == 1;
    } else if (k == "num_cells") {
      ok = std::fscanf(f, "%" SCNu64, &meta.num_cells) == 1;
    } else if (k == "store_first_page") {
      ok = std::fscanf(f, "%" SCNu64, &meta.store_first_page) == 1;
    } else if (k == "value_range") {
      ok = std::fscanf(f, "%lg %lg", &meta.value_range.min,
                       &meta.value_range.max) == 2;
    } else if (k == "domain") {
      ok = std::fscanf(f, "%lg %lg %lg %lg", &meta.domain.lo.x,
                       &meta.domain.lo.y, &meta.domain.hi.x,
                       &meta.domain.hi.y) == 4;
    } else if (k == "build_entries") {
      ok = std::fscanf(f, "%" SCNu64, &meta.info.num_index_entries) == 1;
    } else if (k == "tree" || k == "spatial") {
      RStarMeta m;
      ok = std::fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64, &m.root,
                       &m.height, &m.size, &m.num_nodes) == 4;
      if (k == "tree") {
        meta.tree = m;
        meta.has_tree = true;
      } else {
        meta.spatial = m;
        meta.has_spatial = true;
      }
    } else if (k == "subfields") {
      ok = std::fscanf(f, "%" SCNu64, &meta.declared_subfields) == 1;
      // Bound the reserve: a corrupt count must not become an
      // allocation bomb. The mismatch is caught by ValidateMeta.
      if (ok && meta.declared_subfields <= (uint64_t{1} << 24)) {
        meta.subfields.reserve(meta.declared_subfields);
      }
    } else if (k == "sf") {
      Subfield sf;
      ok = std::fscanf(f, "%" SCNu64 " %" SCNu64 " %lg %lg %lg", &sf.start,
                       &sf.end, &sf.interval.min, &sf.interval.max,
                       &sf.sum_interval_sizes) == 5;
      meta.subfields.push_back(sf);
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed catalog " + path);
  FIELDDB_RETURN_IF_ERROR(ValidateMeta(meta, path));
  return meta;
}

}  // namespace

StatusOr<uint32_t> FieldDatabase::PeekEpoch(const std::string& prefix) {
  StatusOr<MetaData> meta = ReadMeta(prefix + ".meta");
  if (!meta.ok()) return meta.status();
  return meta->epoch;
}

Status FieldDatabase::Save(const std::string& prefix) {
  return SaveImpl(prefix, SaveCrashPoint::kNone);
}

Status FieldDatabase::SaveCrashBeforeRenameForTest(const std::string& prefix) {
  return SaveImpl(prefix, SaveCrashPoint::kBeforeRename);
}

Status FieldDatabase::SaveImpl(const std::string& prefix,
                               SaveCrashPoint crash_point) {
  if (index_->method() == IndexMethod::kRowIp) {
    // Refuse before any page is copied, not from inside the pipeline.
    return Status::Unimplemented(
        "Row-IP is a comparison baseline without persistence support");
  }
  // The page-copy / rename / WAL-truncate pipeline is the engine's
  // (field-type-agnostic); only the catalog body is ours.
  return engine_.SaveSnapshot(
      prefix, crash_point,
      [&](const std::string& meta_tmp_path, uint32_t new_epoch) -> Status {
        MetaData meta;
        meta.page_size = engine_.file()->page_size();
        meta.epoch = new_epoch;
        meta.method = static_cast<int>(index_->method());
        meta.num_cells = index_->cell_store().size();
        meta.store_first_page = index_->cell_store().first_page();
        meta.value_range = value_range_;
        meta.domain = domain_;
        meta.info = index_->build_info();
        switch (index_->method()) {
          case IndexMethod::kLinearScan:
            break;
          case IndexMethod::kIAll:
            meta.has_tree = true;
            meta.tree =
                static_cast<const IAllIndex*>(index_.get())->tree().meta();
            break;
          case IndexMethod::kIHilbert: {
            const auto* idx = static_cast<const IHilbertIndex*>(index_.get());
            meta.has_tree = true;
            meta.tree = idx->tree().meta();
            meta.subfields = idx->subfields();
            break;
          }
          case IndexMethod::kIntervalQuadtree: {
            const auto* idx =
                static_cast<const IntervalQuadtreeIndex*>(index_.get());
            meta.has_tree = true;
            meta.tree = idx->tree().meta();
            meta.subfields = idx->subfields();
            break;
          }
          case IndexMethod::kRowIp:
            return Status::Unimplemented(
                "Row-IP is a comparison baseline without persistence "
                "support");
        }
        if (spatial_.has_value()) {
          meta.has_spatial = true;
          meta.spatial = spatial_->meta();
        }
        return WriteMeta(meta_tmp_path, meta);
      });
}

StatusOr<std::unique_ptr<FieldDatabase>> FieldDatabase::Open(
    const std::string& prefix, size_t pool_pages) {
  OpenOptions options;
  options.pool_pages = pool_pages;
  return Open(prefix, options);
}

StatusOr<std::unique_ptr<FieldDatabase>> FieldDatabase::Open(
    const std::string& prefix, const OpenOptions& options) {
  const std::string meta_path = prefix + ".meta";

  // Self-heal a save that crashed between its two renames (see
  // TryCompleteInterruptedSave): `.pages` already holds the next
  // snapshot but `.meta` still describes the previous one.
  TryCompleteInterruptedSave(
      prefix, [](const std::string& path) -> StatusOr<uint32_t> {
        StatusOr<MetaData> m = ReadMeta(path);
        if (!m.ok()) return m.status();
        return m->epoch;
      });

  StatusOr<MetaData> meta = ReadMeta(meta_path);
  if (!meta.ok()) return meta.status();

  auto db = std::unique_ptr<FieldDatabase>(new FieldDatabase());
  FIELDDB_RETURN_IF_ERROR(
      db->engine_.InitForOpen(prefix, meta->page_size, meta->epoch,
                              options.pool_pages, options.readahead_pages));

  // Page-range validation against the actual file: a truncated or
  // mismatched page file must not turn into out-of-range reads later.
  const uint64_t num_pages = db->engine_.file()->NumPages();
  if (meta->num_cells > 0 && meta->store_first_page >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'store_first_page'");
  }
  if (meta->has_tree && meta->tree.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'tree'");
  }
  if (meta->has_spatial && meta->spatial.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'spatial'");
  }

  BufferPool* const pool = db->engine_.pool();
  db->value_range_ = meta->value_range;
  db->domain_ = meta->domain;

  StatusOr<CellStore> store =
      CellStore::Attach(pool, meta->store_first_page, meta->num_cells);
  if (!store.ok()) return store.status();

  IndexBuildInfo info;
  info.num_cells = meta->num_cells;
  info.num_index_entries = meta->info.num_index_entries;
  info.num_subfields = meta->subfields.size();
  info.store_pages = store->num_pages();
  info.tree_height = meta->has_tree ? meta->tree.height : 0;
  info.tree_nodes = meta->has_tree ? meta->tree.num_nodes : 0;

  const IndexMethod method = static_cast<IndexMethod>(meta->method);
  switch (method) {
    case IndexMethod::kLinearScan:
      db->index_ =
          LinearScanIndex::Attach(std::move(store).value(), info);
      break;
    case IndexMethod::kIAll: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IAllIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(pool, meta->tree), info);
      break;
    }
    case IndexMethod::kIHilbert: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IHilbertIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(pool, meta->tree),
          std::move(meta->subfields), info);
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IntervalQuadtreeIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(pool, meta->tree),
          std::move(meta->subfields), info);
      break;
    }
    default:
      return Status::Corruption("unknown index method in catalog");
  }
  if (meta->has_spatial) {
    db->spatial_.emplace(RStarTree<2>::Attach(pool, meta->spatial));
  }
  // Planning is a pure function of the attached index state, so a
  // reopened snapshot plans exactly like the database that saved it.
  db->InitPlanner(PlannerMode::kAuto);

  // Recovery: replay the write-ahead log over the snapshot (logical
  // redo through the same UpdateCellValues path the original mutations
  // took, so the zone map, subfield intervals and interval-tree entries
  // are all maintained, not just pages), then either keep logging or
  // fold into a fresh checkpoint. The scan/replay/verify pipeline,
  // stale-epoch filtering and metrics are the engine's.
  RecoveryReport report;
  FIELDDB_RETURN_IF_ERROR(db->engine_.RecoverFromWal(
      prefix, options.wal_mode,
      [&](const WalFrame& frame) -> Status {
        FIELDDB_RETURN_IF_ERROR(
            db->index_->UpdateCellValues(frame.cell_id, frame.values));
        for (const double w : frame.values) db->value_range_.Extend(w);
        return Status::OK();
      },
      [&]() { return db->SaveImpl(prefix, SaveCrashPoint::kNone); },
      &report));

  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    // One structured record per open: what recovery found and did. The
    // event log writes through its own fd, never the page file, so this
    // cannot disturb recovery state or I/O attribution.
    db->engine_.LogRecoveryEvent(report, options.wal_mode);
    if (options.wal_mode == WalMode::kOff && report.folded) {
      db->LogEvent(EventLog::Event("wal_mode_transition")
                       .Add("from", "unknown")
                       .Add("to", WalModeName(WalMode::kOff))
                       .Add("at", "open_fold"));
    }
  }

  pool->ResetStats();
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return db;
}

}  // namespace fielddb

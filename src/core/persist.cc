// FieldDatabase persistence: Save writes the checksummed page file and a
// text catalog to temp paths, fsyncs, then atomically renames them over
// the previous snapshot (crash-safe: an interrupted save leaves the old
// snapshot loadable). Open validates the catalog strictly and re-attaches
// every component (cell store, value index, spatial tree) against the
// on-disk pages.

#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/field_database.h"
#include "obs/metrics.h"

namespace fielddb {

namespace {

// v2 bumped for the per-page [crc | epoch | page id] header framing and
// the catalog's `epoch` key; v1 files have no page headers and cannot be
// verified, so they are rejected rather than trusted.
constexpr const char* kMagic = "fielddb-meta-v2";
constexpr const char* kMagicV1 = "fielddb-meta-v1";

struct MetaData {
  uint32_t page_size = 0;
  uint32_t epoch = 0;
  int method = 0;
  uint64_t num_cells = 0;
  PageId store_first_page = 0;
  ValueInterval value_range;
  Rect2 domain;
  bool has_tree = false;
  RStarMeta tree;
  bool has_spatial = false;
  RStarMeta spatial;
  IndexBuildInfo info;
  std::vector<Subfield> subfields;
  uint64_t declared_subfields = 0;
};

void WriteRStarMeta(std::FILE* f, const char* key, const RStarMeta& m) {
  std::fprintf(f, "%s %" PRIu64 " %u %" PRIu64 " %" PRIu64 "\n", key,
               m.root, m.height, m.size, m.num_nodes);
}

Status WriteMeta(const std::string& path, const MetaData& meta) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot write " + path);
  std::fprintf(f, "%s\n", kMagic);
  std::fprintf(f, "page_size %u\n", meta.page_size);
  std::fprintf(f, "epoch %u\n", meta.epoch);
  std::fprintf(f, "method %d\n", meta.method);
  std::fprintf(f, "num_cells %" PRIu64 "\n", meta.num_cells);
  std::fprintf(f, "store_first_page %" PRIu64 "\n", meta.store_first_page);
  std::fprintf(f, "value_range %.17g %.17g\n", meta.value_range.min,
               meta.value_range.max);
  std::fprintf(f, "domain %.17g %.17g %.17g %.17g\n", meta.domain.lo.x,
               meta.domain.lo.y, meta.domain.hi.x, meta.domain.hi.y);
  std::fprintf(f, "build_entries %" PRIu64 "\n",
               meta.info.num_index_entries);
  if (meta.has_tree) WriteRStarMeta(f, "tree", meta.tree);
  if (meta.has_spatial) WriteRStarMeta(f, "spatial", meta.spatial);
  std::fprintf(f, "subfields %zu\n", meta.subfields.size());
  for (const Subfield& sf : meta.subfields) {
    std::fprintf(f, "sf %" PRIu64 " %" PRIu64 " %.17g %.17g %.17g\n",
                 sf.start, sf.end, sf.interval.min, sf.interval.max,
                 sf.sum_interval_sizes);
  }
  // Make the catalog durable before it can become a rename target.
  const bool ok =
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("flush failed for " + path);
}

/// Numeric-range validation after parsing. The parser only proves the
/// catalog is well-formed text; this proves the values can be acted on
/// without feeding garbage (zero page sizes, NaN ranges, inverted
/// subfields) into the storage layer. kCorruption names the bad key.
Status ValidateMeta(const MetaData& meta, const std::string& path) {
  const auto bad = [&](const char* key) {
    return Status::Corruption("catalog " + path + ": invalid value for '" +
                              key + "'");
  };
  if (meta.page_size == 0 || meta.page_size > (1u << 26)) {
    return bad("page_size");
  }
  if (meta.method < 0 ||
      meta.method > static_cast<int>(IndexMethod::kRowIp)) {
    return bad("method");
  }
  if (!std::isfinite(meta.value_range.min) ||
      !std::isfinite(meta.value_range.max) ||
      meta.value_range.min > meta.value_range.max) {
    return bad("value_range");
  }
  if (!std::isfinite(meta.domain.lo.x) || !std::isfinite(meta.domain.lo.y) ||
      !std::isfinite(meta.domain.hi.x) || !std::isfinite(meta.domain.hi.y)) {
    return bad("domain");
  }
  if (meta.declared_subfields != meta.subfields.size()) {
    return bad("subfields");
  }
  for (const Subfield& sf : meta.subfields) {
    if (sf.start > sf.end || sf.end > meta.num_cells) return bad("sf");
    if (!std::isfinite(sf.interval.min) || !std::isfinite(sf.interval.max) ||
        sf.interval.min > sf.interval.max ||
        !std::isfinite(sf.sum_interval_sizes)) {
      return bad("sf");
    }
  }
  return Status::OK();
}

StatusOr<MetaData> ReadMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot read " + path);
  MetaData meta;
  char magic[64] = {};
  if (std::fscanf(f, "%63s", magic) != 1) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  if (std::string(magic) == kMagicV1) {
    std::fclose(f);
    return Status::Corruption(
        "unsupported v1 catalog (no page checksums) in " + path +
        "; re-save with this version");
  }
  if (std::string(magic) != kMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  char key[64];
  bool ok = true;
  while (ok && std::fscanf(f, "%63s", key) == 1) {
    const std::string k = key;
    if (k == "page_size") {
      ok = std::fscanf(f, "%u", &meta.page_size) == 1;
    } else if (k == "epoch") {
      ok = std::fscanf(f, "%u", &meta.epoch) == 1;
    } else if (k == "method") {
      ok = std::fscanf(f, "%d", &meta.method) == 1;
    } else if (k == "num_cells") {
      ok = std::fscanf(f, "%" SCNu64, &meta.num_cells) == 1;
    } else if (k == "store_first_page") {
      ok = std::fscanf(f, "%" SCNu64, &meta.store_first_page) == 1;
    } else if (k == "value_range") {
      ok = std::fscanf(f, "%lg %lg", &meta.value_range.min,
                       &meta.value_range.max) == 2;
    } else if (k == "domain") {
      ok = std::fscanf(f, "%lg %lg %lg %lg", &meta.domain.lo.x,
                       &meta.domain.lo.y, &meta.domain.hi.x,
                       &meta.domain.hi.y) == 4;
    } else if (k == "build_entries") {
      ok = std::fscanf(f, "%" SCNu64, &meta.info.num_index_entries) == 1;
    } else if (k == "tree" || k == "spatial") {
      RStarMeta m;
      ok = std::fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64, &m.root,
                       &m.height, &m.size, &m.num_nodes) == 4;
      if (k == "tree") {
        meta.tree = m;
        meta.has_tree = true;
      } else {
        meta.spatial = m;
        meta.has_spatial = true;
      }
    } else if (k == "subfields") {
      ok = std::fscanf(f, "%" SCNu64, &meta.declared_subfields) == 1;
      // Bound the reserve: a corrupt count must not become an
      // allocation bomb. The mismatch is caught by ValidateMeta.
      if (ok && meta.declared_subfields <= (uint64_t{1} << 24)) {
        meta.subfields.reserve(meta.declared_subfields);
      }
    } else if (k == "sf") {
      Subfield sf;
      ok = std::fscanf(f, "%" SCNu64 " %" SCNu64 " %lg %lg %lg", &sf.start,
                       &sf.end, &sf.interval.min, &sf.interval.max,
                       &sf.sum_interval_sizes) == 5;
      meta.subfields.push_back(sf);
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed catalog " + path);
  FIELDDB_RETURN_IF_ERROR(ValidateMeta(meta, path));
  return meta;
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + " failed");
  }
  return Status::OK();
}

/// Epoch a page file was stamped with, read from the raw slot-0 header
/// (bytes [4, 8): DiskPageFile::WriteSlot stores the epoch unmasked
/// there). Used by the rename self-heal to decide whether `.pages`
/// already holds the next snapshot; 0 on any failure, which no real
/// snapshot uses (Save stamps epoch_ + 1 >= 1).
uint32_t PeekPagesEpoch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  uint8_t buf[8] = {};
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  if (got != sizeof(buf)) return 0;
  uint32_t epoch = 0;
  std::memcpy(&epoch, buf + 4, sizeof(epoch));
  return epoch;
}

// Best-effort directory fsync so the renames themselves are durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

StatusOr<uint32_t> FieldDatabase::PeekEpoch(const std::string& prefix) {
  StatusOr<MetaData> meta = ReadMeta(prefix + ".meta");
  if (!meta.ok()) return meta.status();
  return meta->epoch;
}

Status FieldDatabase::Save(const std::string& prefix) {
  return SaveImpl(prefix, SaveCrashPoint::kNone);
}

Status FieldDatabase::SaveCrashBeforeRenameForTest(const std::string& prefix) {
  return SaveImpl(prefix, SaveCrashPoint::kBeforeRename);
}

Status FieldDatabase::SaveImpl(const std::string& prefix,
                               SaveCrashPoint crash_point) {
  // No-steal (WAL mode): dirty frames must not be written back in
  // place — the checkpoint captures them straight out of the pool into
  // the fresh snapshot below, so the live `.pages` file stays exactly
  // the previous checkpoint until the rename commits.
  const bool no_steal = pool_->no_steal();
  if (!no_steal) FIELDDB_RETURN_IF_ERROR(pool_->Flush());

  const uint32_t epoch = epoch_ + 1;
  const std::string pages_tmp = prefix + ".pages.tmp";
  const std::string meta_tmp = prefix + ".meta.tmp";

  {
    StatusOr<std::unique_ptr<DiskPageFile>> out =
        DiskPageFile::Create(pages_tmp, file_->page_size(), epoch);
    if (!out.ok()) return out.status();
    const uint64_t num_pages = file_->NumPages();
    Page page(file_->page_size());
    for (PageId id = 0; id < num_pages; ++id) {
      if (crash_point == SaveCrashPoint::kMidPagesTmp && id == num_pages / 2) {
        return Status::OK();  // "crash": torn temp file, snapshot untouched
      }
      if (!no_steal || !pool_->TryGetResident(id, &page)) {
        FIELDDB_RETURN_IF_ERROR(file_->Read(id, &page));
      }
      StatusOr<PageId> copied = (*out)->Allocate();
      if (!copied.ok()) return copied.status();
      FIELDDB_RETURN_IF_ERROR((*out)->Write(*copied, page));
    }
    FIELDDB_RETURN_IF_ERROR((*out)->Sync());
    // Scope end closes the temp file before it is renamed into place.
  }

  MetaData meta;
  meta.page_size = file_->page_size();
  meta.epoch = epoch;
  meta.method = static_cast<int>(index_->method());
  meta.num_cells = index_->cell_store().size();
  meta.store_first_page = index_->cell_store().first_page();
  meta.value_range = value_range_;
  meta.domain = domain_;
  meta.info = index_->build_info();
  switch (index_->method()) {
    case IndexMethod::kLinearScan:
      break;
    case IndexMethod::kIAll:
      meta.has_tree = true;
      meta.tree = static_cast<const IAllIndex*>(index_.get())->tree().meta();
      break;
    case IndexMethod::kIHilbert: {
      const auto* idx = static_cast<const IHilbertIndex*>(index_.get());
      meta.has_tree = true;
      meta.tree = idx->tree().meta();
      meta.subfields = idx->subfields();
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      const auto* idx =
          static_cast<const IntervalQuadtreeIndex*>(index_.get());
      meta.has_tree = true;
      meta.tree = idx->tree().meta();
      meta.subfields = idx->subfields();
      break;
    }
    case IndexMethod::kRowIp:
      return Status::Unimplemented(
          "Row-IP is a comparison baseline without persistence support");
  }
  if (spatial_.has_value()) {
    meta.has_spatial = true;
    meta.spatial = spatial_->meta();
  }
  FIELDDB_RETURN_IF_ERROR(WriteMeta(meta_tmp, meta));

  if (crash_point == SaveCrashPoint::kBeforeRename) return Status::OK();

  // Commit. Pages first: a crash between the renames leaves new pages
  // under the old catalog, which the epoch check in every page header
  // turns into a detected corruption instead of a silent mix — and Open
  // self-heals it by completing the `.meta.tmp` rename (it can verify
  // `.pages` carries exactly the epoch `.meta.tmp` declares). Before
  // the first rename the old snapshot is fully intact.
  FIELDDB_RETURN_IF_ERROR(RenameFile(pages_tmp, prefix + ".pages"));
  if (crash_point == SaveCrashPoint::kBetweenRenames) return Status::OK();
  FIELDDB_RETURN_IF_ERROR(RenameFile(meta_tmp, prefix + ".meta"));
  SyncParentDir(prefix + ".meta");

  if (no_steal) {
    // The snapshot is committed; the checkpoint epilogue reconciles the
    // live (still-open) page file with the pool. The open DiskPageFile
    // handle now points at the *unlinked* previous `.pages` inode, so
    // write the dirty frames down into it — for clean pages the two
    // inodes are byte-identical already, and for dirty ones this makes
    // the handle serve post-checkpoint state on any future cache miss.
    // Nothing here affects what a reopen reads (that is the renamed
    // snapshot); it only keeps this open database self-consistent.
    pool_->set_no_steal(false);
    const Status flush = pool_->Flush();
    pool_->set_no_steal(true);
    FIELDDB_RETURN_IF_ERROR(flush);
  }
  if (wal_ != nullptr) {
    if (crash_point == SaveCrashPoint::kBeforeWalTruncate) {
      epoch_ = epoch;
      return Status::OK();  // frames left behind now carry a stale epoch
    }
    // Every logged frame is captured by the snapshot: drop them and
    // stamp future frames with the snapshot's epoch.
    const Status truncated = wal_->Truncate(epoch);
    if (!truncated.ok()) {
      // The renames above already committed: the on-disk catalog is at
      // the new epoch while the log still stamps frames with the old
      // one, which the next recovery would skip as stale. Truncate has
      // poisoned the log, so no further update can be acknowledged;
      // adopt the committed epoch and surface the failure.
      epoch_ = epoch;
      return truncated;
    }
  }
  epoch_ = epoch;
  return Status::OK();
}

StatusOr<std::unique_ptr<FieldDatabase>> FieldDatabase::Open(
    const std::string& prefix, size_t pool_pages) {
  OpenOptions options;
  options.pool_pages = pool_pages;
  return Open(prefix, options);
}

StatusOr<std::unique_ptr<FieldDatabase>> FieldDatabase::Open(
    const std::string& prefix, const OpenOptions& options) {
  const std::string meta_path = prefix + ".meta";
  StatusOr<MetaData> meta = ReadMeta(meta_path);

  // Self-heal a save that crashed between its two renames: `.pages`
  // already holds the next snapshot but `.meta` still describes the
  // previous one. The signature is unforgeable — `.meta.tmp` parses,
  // its epoch is exactly one past the current catalog's (or there is no
  // catalog at all: a first save), and the page file is stamped with
  // precisely that epoch (a leftover `.meta.tmp` from a crash *before*
  // the renames fails this check because `.pages` kept the old stamp).
  // Completing the second rename commits the interrupted save.
  {
    StatusOr<MetaData> tmp = ReadMeta(prefix + ".meta.tmp");
    if (tmp.ok() && tmp->epoch != 0 &&
        PeekPagesEpoch(prefix + ".pages") == tmp->epoch &&
        (!meta.ok() || meta->epoch + 1 == tmp->epoch)) {
      FIELDDB_RETURN_IF_ERROR(RenameFile(prefix + ".meta.tmp", meta_path));
      SyncParentDir(meta_path);
      meta = std::move(tmp);
    }
  }
  if (!meta.ok()) return meta.status();

  StatusOr<std::unique_ptr<DiskPageFile>> file =
      DiskPageFile::Open(prefix + ".pages", meta->page_size, meta->epoch);
  if (!file.ok()) return file.status();

  // Page-range validation against the actual file: a truncated or
  // mismatched page file must not turn into out-of-range reads later.
  const uint64_t num_pages = (*file)->NumPages();
  if (meta->num_cells > 0 && meta->store_first_page >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'store_first_page'");
  }
  if (meta->has_tree && meta->tree.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'tree'");
  }
  if (meta->has_spatial && meta->spatial.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'spatial'");
  }

  auto db = std::unique_ptr<FieldDatabase>(new FieldDatabase());
  db->file_ = std::move(file).value();
  db->pool_ =
      std::make_unique<BufferPool>(db->file_.get(), options.pool_pages);
  // An attached database never overwrites checkpoint pages in place:
  // Save is the checkpoint's only mutator (atomic temp-file renames).
  // No-steal enforces that — dirty frames stay pooled until the next
  // Save captures them; under wal_mode off they are simply dropped at
  // Close (updates there are volatile by contract, DESIGN.md §14).
  // Writing them back here would let `.pages` drift ahead of the
  // subfield intervals and tree meta still recorded in `.meta`.
  db->pool_->set_no_steal(true);
  db->value_range_ = meta->value_range;
  db->domain_ = meta->domain;
  db->epoch_ = meta->epoch;

  StatusOr<CellStore> store = CellStore::Attach(
      db->pool_.get(), meta->store_first_page, meta->num_cells);
  if (!store.ok()) return store.status();

  IndexBuildInfo info;
  info.num_cells = meta->num_cells;
  info.num_index_entries = meta->info.num_index_entries;
  info.num_subfields = meta->subfields.size();
  info.store_pages = store->num_pages();
  info.tree_height = meta->has_tree ? meta->tree.height : 0;
  info.tree_nodes = meta->has_tree ? meta->tree.num_nodes : 0;

  const IndexMethod method = static_cast<IndexMethod>(meta->method);
  switch (method) {
    case IndexMethod::kLinearScan:
      db->index_ =
          LinearScanIndex::Attach(std::move(store).value(), info);
      break;
    case IndexMethod::kIAll: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IAllIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(db->pool_.get(), meta->tree), info);
      break;
    }
    case IndexMethod::kIHilbert: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IHilbertIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(db->pool_.get(), meta->tree),
          std::move(meta->subfields), info);
      break;
    }
    case IndexMethod::kIntervalQuadtree: {
      if (!meta->has_tree) return Status::Corruption("missing tree meta");
      db->index_ = IntervalQuadtreeIndex::Attach(
          std::move(store).value(),
          RStarTree<1>::Attach(db->pool_.get(), meta->tree),
          std::move(meta->subfields), info);
      break;
    }
    default:
      return Status::Corruption("unknown index method in catalog");
  }
  if (meta->has_spatial) {
    db->spatial_.emplace(
        RStarTree<2>::Attach(db->pool_.get(), meta->spatial));
  }
  // Planning is a pure function of the attached index state, so a
  // reopened snapshot plans exactly like the database that saved it.
  db->InitPlanner(PlannerMode::kAuto);

  // --- Recovery: replay the write-ahead log over the snapshot. ---
  MetricsRegistry& reg = MetricsRegistry::Default();
  const std::string wal_path = prefix + ".wal";
  RecoveryReport report;
  uint64_t replayed = 0;
  uint64_t stale = 0;
  {
    ScopedSpan recovery(&report.trace, "recovery", nullptr);
    WalScanResult scan;
    {
      ScopedSpan scan_span(&report.trace, "wal.scan", nullptr);
      StatusOr<WalScanResult> scanned = WriteAheadLog::Scan(wal_path);
      if (!scanned.ok()) return scanned.status();
      scan = std::move(scanned).value();
      scan_span.set_items(scan.frames.size());
      if (!scan.torn_reason.empty()) scan_span.set_detail(scan.torn_reason);
    }
    report.torn_bytes = scan.torn_bytes();
    report.valid_bytes = scan.valid_bytes;

    if (!scan.frames.empty()) {
      // Replayed pages become dirty pool frames that no-steal keeps off
      // the checkpoint they redo (a crash mid-replay must stay
      // re-playable). Logical redo through the same UpdateCellValues
      // path the original mutations took, so the zone map, subfield
      // intervals and interval-tree entries are all maintained, not
      // just pages.
      ScopedSpan replay_span(&report.trace, "wal.replay", nullptr);
      for (const WalFrame& frame : scan.frames) {
        if (frame.epoch != meta->epoch) {
          // A completed checkpoint already captured this frame; only
          // the not-yet-truncated log survived the crash.
          ++stale;
          continue;
        }
        const Status applied =
            db->index_->UpdateCellValues(frame.cell_id, frame.values);
        if (!applied.ok()) {
          return Status::Corruption(
              "wal replay failed at lsn " + std::to_string(frame.lsn) +
              ": " + applied.ToString());
        }
        for (const double w : frame.values) db->value_range_.Extend(w);
        ++replayed;
      }
      replay_span.set_items(replayed);
      if (stale > 0) {
        replay_span.set_detail(std::to_string(stale) + " stale frames");
      }
    }
    report.frames_replayed = replayed;
    report.stale_frames = stale;
    reg.GetCounter("storage.wal.replayed_frames")->Increment(replayed);
    reg.GetCounter("storage.wal.stale_frames")->Increment(stale);

    if (replayed > 0) {
      // Post-replay verification with the Scrub machinery: under
      // no-steal the flush inside is a no-op, so this proves the
      // checkpoint base the redo was applied over is bit-intact.
      ScopedSpan verify_span(&report.trace, "verify", nullptr);
      ScrubReport scrub;
      FIELDDB_RETURN_IF_ERROR(db->Scrub(&scrub));
      report.pages_verified = scrub.pages_checked;
      report.corrupt_pages = scrub.corrupt_pages;
      verify_span.set_items(scrub.pages_checked);
    }
    recovery.set_items(replayed);
  }

  if (options.wal_mode != WalMode::kOff) {
    // Keep logging: reopen the log for appends (physically truncating
    // any torn tail); dirty frames stay pinned until the next
    // checkpoint.
    StatusOr<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(wal_path, options.wal_mode, meta->epoch);
    if (!wal.ok()) return wal.status();
    db->wal_ = std::move(wal).value();
  } else {
    if (replayed > 0) {
      // The caller wants a log-less database but the log held committed
      // mutations: fold them into a fresh checkpoint, then drop the
      // log. (A crash in between is safe — the checkpoint bumped the
      // epoch, so the leftover log replays as stale no-ops.)
      FIELDDB_RETURN_IF_ERROR(db->SaveImpl(prefix, SaveCrashPoint::kNone));
      report.folded = true;
    }
    std::remove(wal_path.c_str());  // absent file is fine
  }

  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    // One structured record per open: what recovery found and did. The
    // event log writes through its own fd, never the page file, so this
    // cannot disturb recovery state or I/O attribution.
    db->LogEvent(EventLog::Event("recovery")
                     .Add("frames_replayed", report.frames_replayed)
                     .Add("stale_frames", report.stale_frames)
                     .Add("torn_bytes", report.torn_bytes)
                     .Add("pages_verified", report.pages_verified)
                     .Add("corrupt_pages",
                          static_cast<uint64_t>(report.corrupt_pages.size()))
                     .Add("folded", report.folded)
                     .Add("wal_mode", WalModeName(options.wal_mode)));
    if (options.wal_mode == WalMode::kOff && report.folded) {
      db->LogEvent(EventLog::Event("wal_mode_transition")
                       .Add("from", "unknown")
                       .Add("to", WalModeName(WalMode::kOff))
                       .Add("at", "open_fold"));
    }
  }

  db->pool_->ResetStats();
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return db;
}

}  // namespace fielddb

#ifndef FIELDDB_CORE_FIELD_ENGINE_H_
#define FIELDDB_CORE_FIELD_ENGINE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace fielddb {

/// Deterministic interruption points inside a snapshot save, in pipeline
/// order. Each stops the save ("crashes") right before the named step,
/// with everything earlier durable — the crash-matrix tests prove every
/// prefix of the pipeline leaves a loadable database behind. Shared by
/// every field type (FieldDatabase::SaveCrashPoint aliases it).
enum class SnapshotCrashPoint {
  kNone = 0,
  /// Mid-copy into `.pages.tmp`: the temp file is torn, neither
  /// snapshot file touched.
  kMidPagesTmp,
  /// Both temp files durable, neither rename done.
  kBeforeRename,
  /// `.pages` renamed, `.meta` not: the half-committed state Open
  /// self-heals by completing the second rename.
  kBetweenRenames,
  /// Fully committed but the superseded WAL not yet truncated: its
  /// frames carry the old epoch and replay as stale no-ops.
  kBeforeWalTruncate,
};

/// --- Filesystem helpers shared by every catalog writer ---

Status RenameFile(const std::string& from, const std::string& to);

/// Best-effort directory fsync so renames themselves are durable.
void SyncParentDir(const std::string& path);

/// Epoch a page file was stamped with, read from the raw slot-0 header
/// (bytes [4, 8): DiskPageFile::WriteSlot stores the epoch unmasked
/// there). Used by the rename self-heal to decide whether `.pages`
/// already holds the next snapshot; 0 on any failure, which no real
/// snapshot uses (Save stamps epoch + 1 >= 1).
uint32_t PeekPagesEpoch(const std::string& path);

/// Writes a text catalog at `path` through `body`, then makes it durable
/// (fflush + fsync) before it can become a rename target. `body` returns
/// false on a formatting failure.
Status WriteCatalogFile(const std::string& path,
                        const std::function<bool(std::FILE*)>& body);

/// Completes a save that crashed between its two renames: `.pages`
/// already holds the next snapshot but `.meta` still describes the
/// previous one. The signature is unforgeable — `.meta.tmp` parses (via
/// the caller's `catalog_epoch`), its epoch is exactly one past the
/// current catalog's (or there is no catalog at all: a first save), and
/// the page file is stamped with precisely that epoch (a leftover
/// `.meta.tmp` from a crash *before* the renames fails this check
/// because `.pages` kept the old stamp). Returns true when `.meta.tmp`
/// was promoted to `.meta`; the caller re-reads the catalog then.
bool TryCompleteInterruptedSave(
    const std::string& prefix,
    const std::function<StatusOr<uint32_t>(const std::string& path)>&
        catalog_epoch);

/// What recovery did during an engine-hosted Open (all zero for a clean
/// open with no log). `trace` holds a "recovery" span with wal.scan /
/// wal.replay / verify children when a replay actually ran. Every field
/// type's Open reports through this one struct
/// (FieldDatabase::RecoveryReport aliases it).
struct EngineRecoveryReport {
  /// Frames re-applied to the attached index (current epoch).
  uint64_t frames_replayed = 0;
  /// Intact frames skipped because a completed checkpoint already
  /// captured them (older epoch).
  uint64_t stale_frames = 0;
  /// Bytes cut off the log's tail (torn by a crash mid-append).
  uint64_t torn_bytes = 0;
  /// Length of the intact log prefix.
  uint64_t valid_bytes = 0;
  /// Post-replay verification (runs only when frames were replayed).
  uint64_t pages_verified = 0;
  std::vector<PageId> corrupt_pages;
  /// True when wal_mode=off folded a non-empty log into a fresh
  /// checkpoint and deleted it.
  bool folded = false;
  QueryTrace trace;
};

/// The shared lifecycle core every field database is hosted on: owns the
/// page file, buffer pool, write-ahead log, event log and snapshot
/// epoch, and implements the field-type-agnostic halves of
/// Build/Open/Save/Update/Close — storage wiring, the crash-safe
/// checkpoint pipeline (temp files + atomic renames + epoch stamping),
/// WAL append/replay with stale-epoch filtering, page scrubbing, and
/// crash simulation. Field-type-specific knowledge (catalog format,
/// record layout, logical redo) enters exclusively through callbacks, so
/// the grid facade and the temporal/vector/volume databases are thin
/// instantiations over one tested core (DESIGN.md §16).
class FieldEngine {
 public:
  struct BuildConfig {
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 1024;
    /// Readahead window (pages) for range scans, installed into the
    /// pool (BufferPool::set_readahead_pages).
    size_t readahead_pages = BufferPool::kDefaultReadaheadPages;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests pass a factory wrapping the file in a
    /// FaultInjectingPageFile to schedule faults against the live
    /// database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
  };

  FieldEngine() = default;
  /// Best-effort durability for a database dropped without Close():
  /// syncs and closes the log, then closes the pool, logging (not
  /// throwing) failures.
  ~FieldEngine();

  FieldEngine(const FieldEngine&) = delete;
  FieldEngine& operator=(const FieldEngine&) = delete;

  /// Fresh storage for a Build: factory-backed (or in-memory) page file
  /// behind a buffer pool.
  Status InitForBuild(const BuildConfig& config);

  /// Attaches the storage of a persisted snapshot: opens
  /// `<prefix>.pages` (page checksums verified against `epoch`) behind
  /// a no-steal pool — an attached database never overwrites checkpoint
  /// pages in place; Save is the checkpoint's only mutator.
  Status InitForOpen(const std::string& prefix, uint32_t page_size,
                     uint32_t epoch, size_t pool_pages,
                     size_t readahead_pages =
                         BufferPool::kDefaultReadaheadPages);

  /// Arms the write-ahead log (Build epilogue, or Open keeping a WAL
  /// mode): opens `wal_path` stamping frames with the current epoch and
  /// pins dirty frames in memory until the next Save (no-steal).
  Status ArmWal(const std::string& wal_path, WalMode mode);

  /// Write-ahead logs one update frame and makes it durable per the WAL
  /// mode. No-op when no log is armed (volatile-update contract). The
  /// caller validates first so only appliable updates are logged.
  Status LogUpdate(CellId id, const std::vector<double>& values);

  /// The crash-safe checkpoint pipeline shared by every Save
  /// (DESIGN.md §13): copies every page into `<prefix>.pages.tmp`
  /// (capturing no-steal residents straight out of the pool), asks
  /// `write_catalog` for a durable `<prefix>.meta.tmp` stamping the new
  /// epoch, renames pages-then-meta (the epoch in every page header
  /// turns a crash between the renames into detected — and self-healed
  /// — state, never a silent mix), fsyncs the directory, reconciles the
  /// no-steal pool with the live file, truncates the WAL, and adopts
  /// the new epoch.
  Status SaveSnapshot(
      const std::string& prefix, SnapshotCrashPoint crash_point,
      const std::function<Status(const std::string& meta_tmp_path,
                                 uint32_t new_epoch)>& write_catalog);

  /// Recovery over an attached snapshot: scans `<prefix>.wal`, skips
  /// frames a completed checkpoint already captured (stale epoch),
  /// replays the rest through `apply` (logical redo — the same update
  /// path the original mutations took, so derived structures are
  /// maintained, not just pages), verifies every page when anything was
  /// replayed, then either keeps logging (`mode` != off: the log is
  /// reopened for appends) or folds the replayed frames into a fresh
  /// checkpoint via `fold_checkpoint` and deletes the log. Fills
  /// `report` (trace spans included) for the caller's recovery report.
  Status RecoverFromWal(const std::string& prefix, WalMode mode,
                        const std::function<Status(const WalFrame&)>& apply,
                        const std::function<Status()>& fold_checkpoint,
                        EngineRecoveryReport* report);

  /// Flushes dirty frames, then walks every page of the backing file
  /// verifying integrity (checksums for disk files). Corrupt pages are
  /// collected rather than aborting the walk; transient read faults are
  /// retried with the same bounded policy as Fetch. Returns non-OK only
  /// for errors that persist after retries.
  Status ScrubPages(uint64_t* pages_checked,
                    std::vector<PageId>* corrupt_pages);

  /// Flushes and closes the storage, surfacing write-back errors the
  /// destructor could only log. In WAL mode the log is synced and
  /// closed and the dirty frames are *dropped* (no-steal: the disk
  /// keeps the last checkpoint, the log keeps everything since).
  Status Close();

  /// Simulated power cut (tests): everything not fsynced is gone. The
  /// WAL is truncated to its durable watermark and the buffer pool is
  /// abandoned without write-back.
  Status SimulateCrashForTest();

  /// Structured event-log plumbing shared by every facade. Append
  /// errors are counted by the log itself; an event must never fail the
  /// operation that emitted it.
  Status AttachEventLog(const std::string& path,
                        double slow_query_threshold_ms);
  void LogEvent(const EventLog::Event& event) const;
  /// One structured "recovery" record per Open, identical fields across
  /// field types.
  void LogRecoveryEvent(const EngineRecoveryReport& report,
                        WalMode mode) const;

  PageFile* file() const { return file_.get(); }
  BufferPool* pool() const { return pool_.get(); }
  WriteAheadLog* wal() const { return wal_.get(); }
  EventLog* event_log() const { return event_log_.get(); }
  uint32_t epoch() const { return epoch_; }
  double slow_query_threshold_ms() const { return slow_query_threshold_ms_; }
  void set_slow_query_threshold_ms(double ms) {
    slow_query_threshold_ms_ = ms;
  }

 private:
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<WriteAheadLog> wal_;
  /// Mutable: const query paths append slow-query events. The log is
  /// internally synchronized and writes only to its own fd.
  mutable std::unique_ptr<EventLog> event_log_;
  double slow_query_threshold_ms_ = 25.0;
  /// Snapshot generation: 0 for a freshly built database, the catalog's
  /// epoch after Open. Save stamps epoch_ + 1.
  uint32_t epoch_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_FIELD_ENGINE_H_

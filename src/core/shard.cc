#include "core/shard.h"

#include <algorithm>
#include <cmath>

#include "common/geometry.h"
#include "curve/curves.h"
#include "obs/metrics.h"

namespace fielddb {

Shard::Shard(ShardDescriptor descriptor, std::unique_ptr<FieldDatabase> db,
             size_t lane_threads, size_t lane_queue_capacity)
    : descriptor_(std::move(descriptor)), db_(std::move(db)) {
  QueryExecutor::Options lo;
  lo.threads = lane_threads;
  lo.queue_capacity = lane_queue_capacity;
  lane_ = std::make_unique<QueryExecutor>(db_.get(), lo);
  const std::string prefix = "shard.s" + std::to_string(descriptor_.id);
  MetricsRegistry& reg = MetricsRegistry::Default();
  queries_ = reg.GetCounter(prefix + ".queries");
  skips_ = reg.GetCounter(prefix + ".skipped");
  wall_ms_ = reg.GetHistogram(prefix + ".wall_ms");
}

bool Shard::MayContain(const ValueInterval& query) const {
  if (!db_->value_range().Intersects(query)) {
    skips_->Increment();
    return false;
  }
  // The planner's zero-I/O selectivity probe (subfield table or
  // in-memory zone map). Only an exact probe may prune: the strided
  // sample can miss matching cells, and an unprobed plan (LinearScan,
  // forced scan) predicts 0 for "unknown".
  const PhysicalPlan plan = db_->PlanValueQuery(query);
  if (plan.probed && !plan.probe_sampled && plan.predicted_candidates == 0) {
    skips_->Increment();
    return false;
  }
  return true;
}

void Shard::RecordQuery(double wall_ms) const {
  queries_->Increment();
  wall_ms_->Record(wall_ms);
}

Status Shard::Close() {
  lane_->Drain();
  return db_->Close();
}

std::vector<std::pair<uint64_t, CellId>> HilbertPartitionKeys(
    const Field& field) {
  // Mirrors LinearizeCells (index/i_hilbert.cc) with the default
  // IHilbertOptions curve (Hilbert, order 16): identical normalization
  // and tie-break, but the keys are kept — the router records each
  // shard's key range in its catalog.
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(CurveType::kHilbert, 16);
  const CellId n = field.NumCells();
  const Rect2 domain = field.Domain();
  const double w = std::max(domain.Width(), kGeomEpsilon);
  const double h = std::max(domain.Height(), kGeomEpsilon);
  std::vector<std::pair<uint64_t, CellId>> keyed(n);
  for (CellId id = 0; id < n; ++id) {
    const Point2 c = field.GetCell(id).Centroid();
    const double ux = (c.x - domain.lo.x) / w;
    const double uy = (c.y - domain.lo.y) / h;
    keyed[id] = {curve->EncodeUnit(ux, uy), id};
  }
  std::sort(keyed.begin(), keyed.end());
  return keyed;
}

}  // namespace fielddb

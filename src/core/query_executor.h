#ifndef FIELDDB_CORE_QUERY_EXECUTOR_H_
#define FIELDDB_CORE_QUERY_EXECUTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/field_database.h"
#include "core/stats.h"
#include "field/region.h"

namespace fielddb {

class Counter;
class Histogram;
class SloTracker;

/// Fixed-size thread pool running value queries against one open
/// FieldDatabase. Each worker owns a QueryContext (so scratch and I/O
/// attribution never cross threads) and pulls from one bounded queue;
/// Submit blocks when the queue is full, which keeps a fast producer
/// from buffering an unbounded workload.
///
/// The executor only issues const query calls — it never updates, saves
/// or closes the database — so any number of executors may share a
/// database, but the caller must not run mutating operations while one
/// is active (the database's threading contract).
class QueryExecutor {
 public:
  struct Options {
    /// Worker threads; clamped to >= 1.
    size_t threads = 4;
    /// Pending (submitted, not yet started) queries before Submit
    /// blocks; clamped to >= 1.
    size_t queue_capacity = 1024;
    /// Optional per-query-class SLO tracking (obs/slo.h): every
    /// completed query is classified by its value-interval width
    /// relative to the database's value range and recorded against
    /// that class's latency objective. Not owned; must outlive the
    /// executor. Null disables tracking.
    SloTracker* slo = nullptr;
    /// Shared-scan scheduling (DESIGN.md §17): when a worker dequeues
    /// the queue's head, it also pulls any still-queued queries whose
    /// intervals overlap the group's growing envelope AND whose
    /// admission the planner prices as no more expensive fused than
    /// isolated (QueryPlanner::CostSharedScan — zero-I/O probes), then
    /// runs the whole group as ONE FieldDatabase::SharedValueQueryStats
    /// sweep. Answers are bit-identical to isolated execution; each
    /// member's stats.io is leader-charged (member 0 carries the
    /// sweep). Fairness: groups form only at head-dequeue from already
    /// queued work — a member can only move *earlier* than its FIFO
    /// turn, the head never waits for future arrivals, and the group
    /// size is capped — so no query's latency is worsened by grouping.
    bool shared_scan = false;
    /// Largest group one sweep may carry (clamped to >= 1). Bounds both
    /// the per-cell predicate fan-out and the latency a rider can add.
    size_t max_scan_group = 16;
  };

  /// Invoked on the worker thread that ran the query.
  using Callback = std::function<void(const Status&, const QueryStats&)>;

  /// Aggregate result of RunBatch. Per-query stats are in submission
  /// order regardless of which worker ran each query.
  struct BatchResult {
    std::vector<QueryStats> per_query;
    /// QueryStats::Accumulate over every successful query (its io field
    /// is the exact sum of the per-thread IoStats deltas).
    QueryStats total;
    double wall_seconds = 0.0;  // batch wall time, submit to last result
    double qps = 0.0;
    double p50_wall_ms = 0.0;
    double p90_wall_ms = 0.0;
    double p99_wall_ms = 0.0;
    uint64_t failed = 0;
    /// OK when every query succeeded, else the first failure observed.
    Status first_error = Status::OK();
  };

  /// `db` must outlive the executor and stay open while it runs.
  QueryExecutor(const FieldDatabase* db, const Options& options);
  explicit QueryExecutor(const FieldDatabase* db)
      : QueryExecutor(db, Options()) {}

  /// Drains outstanding work, then joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Enqueues a stats-only value query; `done` runs on a worker after
  /// the query finishes. Blocks while the queue is at capacity.
  void Submit(const ValueInterval& query, Callback done);

  /// Enqueues an arbitrary closure on the pool — the shard router's
  /// scatter path, where each shard's executor doubles as that shard's
  /// serial lane for region queries and fused sub-batches. Generic
  /// tasks share the FIFO queue (their queue-wait is recorded like any
  /// query's) but never join shared-scan groups and never record SLO —
  /// the submitter owns whatever the closure measures. Blocks while the
  /// queue is at capacity.
  void SubmitTask(std::function<void()> work);

  /// Blocks until every submitted query has finished.
  void Drain();

  /// Runs `queries` across the pool and blocks until all complete.
  /// Individual query failures are recorded in `out` (failed count +
  /// first_error) without aborting the batch; the returned status is
  /// out->first_error.
  Status RunBatch(const std::vector<ValueInterval>& queries,
                  BatchResult* out);

  size_t threads() const { return workers_.size(); }

 private:
  struct Task {
    ValueInterval query;
    Callback done;
    /// Non-null for SubmitTask closures; such tasks bypass the query
    /// path entirely (no grouping, no SLO).
    std::function<void()> work;
    /// Submit time; the worker records dequeue-minus-enqueue as the
    /// query's queue-wait (trace span "queue.wait" + histogram
    /// exec.queue_wait_us) — the saturation signal admission control
    /// will key on.
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  /// Records queue-wait (histogram + trace) and per-class SLO latency
  /// for one finished task; shared by the solo and grouped paths.
  void RecordQueueWait(const Task& task,
                       std::chrono::steady_clock::time_point dequeued) const;
  void RecordSlo(const Task& task, const QueryStats& stats) const;

  const FieldDatabase* db_;
  const size_t queue_capacity_;
  SloTracker* const slo_;
  const bool shared_scan_;
  const size_t max_scan_group_;
  Histogram* const queue_wait_us_;  // exec.queue_wait_us
  Counter* const shared_groups_;    // executor.shared_scan_groups

  std::mutex mu_;
  std::condition_variable not_empty_;  // queue gained work or stopping
  std::condition_variable not_full_;   // queue dropped below capacity
  std::condition_variable idle_;       // all submitted work finished
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_QUERY_EXECUTOR_H_

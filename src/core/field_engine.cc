// The field-type-agnostic lifecycle core (DESIGN.md §16): storage
// wiring, the crash-safe checkpoint pipeline, WAL replay with
// stale-epoch filtering, page scrubbing and crash simulation — hoisted
// out of the grid-only persistence code so the temporal, vector and
// volume databases share one tested implementation.

#include "core/field_engine.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "obs/metrics.h"

namespace fielddb {

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError("rename " + from + " -> " + to + " failed");
  }
  return Status::OK();
}

void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

uint32_t PeekPagesEpoch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  uint8_t buf[8] = {};
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  if (got != sizeof(buf)) return 0;
  uint32_t epoch = 0;
  std::memcpy(&epoch, buf + 4, sizeof(epoch));
  return epoch;
}

Status WriteCatalogFile(const std::string& path,
                        const std::function<bool(std::FILE*)>& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot write " + path);
  bool ok = body(f);
  // Make the catalog durable before it can become a rename target.
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("flush failed for " + path);
}

bool TryCompleteInterruptedSave(
    const std::string& prefix,
    const std::function<StatusOr<uint32_t>(const std::string& path)>&
        catalog_epoch) {
  const StatusOr<uint32_t> tmp = catalog_epoch(prefix + ".meta.tmp");
  if (!tmp.ok() || *tmp == 0) return false;
  if (PeekPagesEpoch(prefix + ".pages") != *tmp) return false;
  const StatusOr<uint32_t> current = catalog_epoch(prefix + ".meta");
  if (current.ok() && *current + 1 != *tmp) return false;
  const std::string meta_path = prefix + ".meta";
  if (!RenameFile(prefix + ".meta.tmp", meta_path).ok()) return false;
  SyncParentDir(meta_path);
  return true;
}

FieldEngine::~FieldEngine() {
  if (wal_ != nullptr) {
    // Best-effort durability for a database dropped without Close():
    // sync the log (the dirty frames it covers are about to be
    // discarded by the no-steal pool destructor).
    const Status s = wal_->Close();
    if (!s.ok()) {
      std::fprintf(stderr,
                   "FieldEngine: wal close failed at destruction: %s\n",
                   s.ToString().c_str());
    }
  }
  if (pool_ != nullptr && !pool_->closed()) {
    const Status s = pool_->Close();
    if (!s.ok()) {
      std::fprintf(stderr, "FieldEngine: close failed at destruction: %s\n",
                   s.ToString().c_str());
    }
  }
}

Status FieldEngine::InitForBuild(const BuildConfig& config) {
  file_ = config.page_file_factory
              ? config.page_file_factory(config.page_size)
              : std::make_unique<MemPageFile>(config.page_size);
  pool_ = std::make_unique<BufferPool>(file_.get(), config.pool_pages);
  pool_->set_readahead_pages(config.readahead_pages);
  return Status::OK();
}

Status FieldEngine::InitForOpen(const std::string& prefix,
                                uint32_t page_size, uint32_t epoch,
                                size_t pool_pages, size_t readahead_pages) {
  StatusOr<std::unique_ptr<DiskPageFile>> file =
      DiskPageFile::Open(prefix + ".pages", page_size, epoch);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  pool_ = std::make_unique<BufferPool>(file_.get(), pool_pages);
  pool_->set_readahead_pages(readahead_pages);
  // An attached database never overwrites checkpoint pages in place:
  // Save is the checkpoint's only mutator (atomic temp-file renames).
  // No-steal enforces that — dirty frames stay pooled until the next
  // Save captures them; under wal_mode off they are simply dropped at
  // Close (updates there are volatile by contract, DESIGN.md §14).
  pool_->set_no_steal(true);
  epoch_ = epoch;
  return Status::OK();
}

Status FieldEngine::ArmWal(const std::string& wal_path, WalMode mode) {
  if (mode == WalMode::kOff) return Status::OK();
  if (wal_path.empty()) {
    return Status::InvalidArgument(
        "wal_mode requires wal_path (use \"<prefix>.wal\")");
  }
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(wal_path, mode, epoch_);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  pool_->set_no_steal(true);
  return Status::OK();
}

Status FieldEngine::LogUpdate(CellId id, const std::vector<double>& values) {
  if (wal_ == nullptr) return Status::OK();
  FIELDDB_RETURN_IF_ERROR(wal_->AppendUpdate(id, values));
  return wal_->Commit();
}

Status FieldEngine::SaveSnapshot(
    const std::string& prefix, SnapshotCrashPoint crash_point,
    const std::function<Status(const std::string& meta_tmp_path,
                               uint32_t new_epoch)>& write_catalog) {
  // No-steal (WAL mode): dirty frames must not be written back in
  // place — the checkpoint captures them straight out of the pool into
  // the fresh snapshot below, so the live `.pages` file stays exactly
  // the previous checkpoint until the rename commits.
  const bool no_steal = pool_->no_steal();
  if (!no_steal) FIELDDB_RETURN_IF_ERROR(pool_->Flush());

  const uint32_t epoch = epoch_ + 1;
  const std::string pages_tmp = prefix + ".pages.tmp";
  const std::string meta_tmp = prefix + ".meta.tmp";

  {
    StatusOr<std::unique_ptr<DiskPageFile>> out =
        DiskPageFile::Create(pages_tmp, file_->page_size(), epoch);
    if (!out.ok()) return out.status();
    const uint64_t num_pages = file_->NumPages();
    Page page(file_->page_size());
    for (PageId id = 0; id < num_pages; ++id) {
      if (crash_point == SnapshotCrashPoint::kMidPagesTmp &&
          id == num_pages / 2) {
        return Status::OK();  // "crash": torn temp file, snapshot untouched
      }
      if (!no_steal || !pool_->TryGetResident(id, &page)) {
        FIELDDB_RETURN_IF_ERROR(file_->Read(id, &page));
      }
      StatusOr<PageId> copied = (*out)->Allocate();
      if (!copied.ok()) return copied.status();
      FIELDDB_RETURN_IF_ERROR((*out)->Write(*copied, page));
    }
    FIELDDB_RETURN_IF_ERROR((*out)->Sync());
    // Scope end closes the temp file before it is renamed into place.
  }

  FIELDDB_RETURN_IF_ERROR(write_catalog(meta_tmp, epoch));

  if (crash_point == SnapshotCrashPoint::kBeforeRename) return Status::OK();

  // Commit. Pages first: a crash between the renames leaves new pages
  // under the old catalog, which the epoch check in every page header
  // turns into a detected corruption instead of a silent mix — and Open
  // self-heals it by completing the `.meta.tmp` rename (it can verify
  // `.pages` carries exactly the epoch `.meta.tmp` declares). Before
  // the first rename the old snapshot is fully intact.
  FIELDDB_RETURN_IF_ERROR(RenameFile(pages_tmp, prefix + ".pages"));
  if (crash_point == SnapshotCrashPoint::kBetweenRenames) return Status::OK();
  FIELDDB_RETURN_IF_ERROR(RenameFile(meta_tmp, prefix + ".meta"));
  SyncParentDir(prefix + ".meta");

  if (no_steal) {
    // The snapshot is committed; the checkpoint epilogue reconciles the
    // live (still-open) page file with the pool. The open DiskPageFile
    // handle now points at the *unlinked* previous `.pages` inode, so
    // write the dirty frames down into it — for clean pages the two
    // inodes are byte-identical already, and for dirty ones this makes
    // the handle serve post-checkpoint state on any future cache miss.
    // Nothing here affects what a reopen reads (that is the renamed
    // snapshot); it only keeps this open database self-consistent.
    pool_->set_no_steal(false);
    const Status flush = pool_->Flush();
    pool_->set_no_steal(true);
    FIELDDB_RETURN_IF_ERROR(flush);
  }
  if (wal_ != nullptr) {
    if (crash_point == SnapshotCrashPoint::kBeforeWalTruncate) {
      epoch_ = epoch;
      return Status::OK();  // frames left behind now carry a stale epoch
    }
    // Every logged frame is captured by the snapshot: drop them and
    // stamp future frames with the snapshot's epoch.
    const Status truncated = wal_->Truncate(epoch);
    if (!truncated.ok()) {
      // The renames above already committed: the on-disk catalog is at
      // the new epoch while the log still stamps frames with the old
      // one, which the next recovery would skip as stale. Truncate has
      // poisoned the log, so no further update can be acknowledged;
      // adopt the committed epoch and surface the failure.
      epoch_ = epoch;
      return truncated;
    }
  }
  epoch_ = epoch;
  return Status::OK();
}

Status FieldEngine::RecoverFromWal(
    const std::string& prefix, WalMode mode,
    const std::function<Status(const WalFrame&)>& apply,
    const std::function<Status()>& fold_checkpoint,
    EngineRecoveryReport* report) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const std::string wal_path = prefix + ".wal";
  uint64_t replayed = 0;
  uint64_t stale = 0;
  {
    ScopedSpan recovery(&report->trace, "recovery", nullptr);
    WalScanResult scan;
    {
      ScopedSpan scan_span(&report->trace, "wal.scan", nullptr);
      StatusOr<WalScanResult> scanned = WriteAheadLog::Scan(wal_path);
      if (!scanned.ok()) return scanned.status();
      scan = std::move(scanned).value();
      scan_span.set_items(scan.frames.size());
      if (!scan.torn_reason.empty()) scan_span.set_detail(scan.torn_reason);
    }
    report->torn_bytes = scan.torn_bytes();
    report->valid_bytes = scan.valid_bytes;

    if (!scan.frames.empty()) {
      // Replayed pages become dirty pool frames that no-steal keeps off
      // the checkpoint they redo (a crash mid-replay must stay
      // re-playable). Logical redo through the caller's `apply` — the
      // same update path the original mutations took, so derived
      // structures (zone maps, subfield hulls, tree entries) are all
      // maintained, not just pages.
      ScopedSpan replay_span(&report->trace, "wal.replay", nullptr);
      for (const WalFrame& frame : scan.frames) {
        if (frame.epoch != epoch_) {
          // A completed checkpoint already captured this frame; only
          // the not-yet-truncated log survived the crash.
          ++stale;
          continue;
        }
        const Status applied = apply(frame);
        if (!applied.ok()) {
          return Status::Corruption(
              "wal replay failed at lsn " + std::to_string(frame.lsn) +
              ": " + applied.ToString());
        }
        ++replayed;
      }
      replay_span.set_items(replayed);
      if (stale > 0) {
        replay_span.set_detail(std::to_string(stale) + " stale frames");
      }
    }
    report->frames_replayed = replayed;
    report->stale_frames = stale;
    reg.GetCounter("storage.wal.replayed_frames")->Increment(replayed);
    reg.GetCounter("storage.wal.stale_frames")->Increment(stale);

    if (replayed > 0) {
      // Post-replay verification with the scrub machinery: under
      // no-steal the flush inside is a no-op, so this proves the
      // checkpoint base the redo was applied over is bit-intact.
      ScopedSpan verify_span(&report->trace, "verify", nullptr);
      FIELDDB_RETURN_IF_ERROR(
          ScrubPages(&report->pages_verified, &report->corrupt_pages));
      verify_span.set_items(report->pages_verified);
    }
    recovery.set_items(replayed);
  }

  if (mode != WalMode::kOff) {
    // Keep logging: reopen the log for appends (physically truncating
    // any torn tail); dirty frames stay pinned until the next
    // checkpoint.
    FIELDDB_RETURN_IF_ERROR(ArmWal(wal_path, mode));
  } else {
    if (replayed > 0) {
      // The caller wants a log-less database but the log held committed
      // mutations: fold them into a fresh checkpoint, then drop the
      // log. (A crash in between is safe — the checkpoint bumped the
      // epoch, so the leftover log replays as stale no-ops.)
      FIELDDB_RETURN_IF_ERROR(fold_checkpoint());
      report->folded = true;
    }
    std::remove(wal_path.c_str());  // absent file is fine
  }
  return Status::OK();
}

Status FieldEngine::ScrubPages(uint64_t* pages_checked,
                               std::vector<PageId>* corrupt_pages) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  Counter* const scrub_pages = reg.GetCounter("db.scrub_pages");
  Counter* const scrub_corrupt = reg.GetCounter("db.scrub_corrupt_pages");
  // Dirty frames shadow the file contents; push them down first so the
  // walk verifies what a reopen would actually read.
  FIELDDB_RETURN_IF_ERROR(pool_->Flush());
  for (PageId id = 0; id < file_->NumPages(); ++id) {
    Status s = file_->VerifyPage(id);
    for (int attempt = 0; !s.ok() && s.code() == StatusCode::kIOError &&
                          attempt < BufferPool::kMaxReadRetries;
         ++attempt) {
      s = file_->VerifyPage(id);
    }
    ++*pages_checked;
    scrub_pages->Increment();
    if (s.code() == StatusCode::kCorruption) {
      corrupt_pages->push_back(id);
      scrub_corrupt->Increment();
    } else if (!s.ok()) {
      return s;  // persistent I/O error: the medium, not the data
    }
  }
  return Status::OK();
}

Status FieldEngine::Close() {
  if (wal_ != nullptr) {
    // Sync the log first: it is the only copy of the mutations the
    // no-steal pool is about to discard.
    FIELDDB_RETURN_IF_ERROR(wal_->Close());
    return pool_->Abandon();
  }
  return pool_->Close();
}

Status FieldEngine::SimulateCrashForTest() {
  if (wal_ != nullptr) {
    FIELDDB_RETURN_IF_ERROR(wal_->SimulateCrashForTest());
  }
  return pool_->Abandon();
}

Status FieldEngine::AttachEventLog(const std::string& path,
                                   double slow_query_threshold_ms) {
  StatusOr<std::unique_ptr<EventLog>> log = EventLog::Open(path);
  if (!log.ok()) return log.status();
  event_log_ = std::move(log).value();
  slow_query_threshold_ms_ = slow_query_threshold_ms;
  return Status::OK();
}

void FieldEngine::LogEvent(const EventLog::Event& event) const {
  if (event_log_ == nullptr) return;
  // Append errors are counted by the log itself
  // (obs.event_log_append_errors); an operation must never fail because
  // its telemetry could not be written.
  (void)event_log_->Append(event);
}

void FieldEngine::LogRecoveryEvent(const EngineRecoveryReport& report,
                                   WalMode mode) const {
  LogEvent(EventLog::Event("recovery")
               .Add("frames_replayed", report.frames_replayed)
               .Add("stale_frames", report.stale_frames)
               .Add("torn_bytes", report.torn_bytes)
               .Add("pages_verified", report.pages_verified)
               .Add("corrupt_pages",
                    static_cast<uint64_t>(report.corrupt_pages.size()))
               .Add("folded", report.folded)
               .Add("wal_mode", WalModeName(mode)));
}

}  // namespace fielddb

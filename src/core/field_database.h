#ifndef FIELDDB_CORE_FIELD_DATABASE_H_
#define FIELDDB_CORE_FIELD_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/field_engine.h"
#include "core/query_context.h"
#include "core/stats.h"
#include "field/field.h"
#include "field/isoline.h"
#include "field/region.h"
#include "index/i_all.h"
#include "index/i_hilbert.h"
#include "index/interval_quadtree.h"
#include "index/linear_scan.h"
#include "index/row_ip_index.h"
#include "index/value_index.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "plan/planner.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace fielddb {

/// Everything configurable about a FieldDatabase build.
struct FieldDatabaseOptions {
  IndexMethod method = IndexMethod::kIHilbert;
  uint32_t page_size = kDefaultPageSize;  // the paper uses 4 KB
  /// Buffer-pool frames. The default (1024 pages = 4 MB at the default
  /// page size) is small relative to the million-cell workloads, so page
  /// misses remain the dominant cost as in the paper's disk setting.
  size_t pool_pages = 1024;
  /// Pages a range scan asks the pool to read ahead — the depth of the
  /// vectored batch PrefetchRange submits (io_uring / preadv on disk
  /// files). Larger windows pipeline more I/O per submission; totals
  /// are unchanged (readahead reads replace Fetch misses one for one).
  size_t readahead_pages = BufferPool::kDefaultReadaheadPages;
  /// Build a 2-D R*-tree over cell MBRs for conventional (Q1) point
  /// queries.
  bool build_spatial_index = true;
  /// Factory for the backing page file (defaults to MemPageFile). Fault-
  /// injection tests pass a factory wrapping the file in a
  /// FaultInjectingPageFile and keep a pointer to the wrapper to
  /// schedule faults against the live database.
  std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
      page_file_factory;
  /// Initial access-path policy for value queries (see QueryPlanner).
  /// kAuto picks fused-scan vs indexed filter+fetch per query from the
  /// disk-model cost; the forced modes pin one physical plan. Changeable
  /// later with set_planner_mode.
  PlannerMode planner_mode = PlannerMode::kAuto;

  /// Durability for mutations (DESIGN.md §14). With a WAL, every
  /// UpdateCellValues is logged before it is applied, dirty pages are
  /// pinned in memory until the next Save (no-steal), and Open replays
  /// the log. Requires `wal_path`; use `<prefix>.wal` for the prefix the
  /// database will be saved under, so Open finds the log. Durability
  /// begins at the first Save: a crash before any checkpoint loses the
  /// freshly built (never-persisted) database, WAL or not.
  WalMode wal_mode = WalMode::kOff;
  std::string wal_path;

  /// Structured operational event log (obs/event_log.h): JSONL records
  /// for slow queries, recovery outcomes, corruption fallbacks and WAL
  /// mode transitions. Empty disables it. The log writes through its
  /// own file descriptor, never the page file, so its I/O cannot show
  /// up in query IoStats or in fault-injection schedules.
  std::string event_log_path;
  /// A query whose wall time reaches this many milliseconds is logged
  /// as a "slow_query" event (with the chosen plan and predicted vs
  /// observed cost). Only meaningful with event_log_path set.
  double slow_query_threshold_ms = 25.0;

  /// Bounded-memory build (DESIGN.md §16): when nonzero, the I-Hilbert
  /// linearization sorts (hilbert key, cell) pairs with the external
  /// merge sorter under this in-RAM budget instead of materializing the
  /// whole keyed field, spilling sorted runs to temp files. The
  /// resulting store and index are byte-identical to an unlimited
  /// build. 0 = unlimited (everything in RAM).
  size_t build_memory_budget_bytes = 0;

  IHilbertIndex::Options ihilbert;
  IAllIndex::Options iall;
  IntervalQuadtreeIndex::Options iqt;
};

/// Result of a field value query (Q2).
struct ValueQueryResult {
  Region region;       // exact answer regions (estimation step output)
  QueryStats stats;
  /// The planner's decision this query executed. Stamped by the
  /// extension engines (temporal snapshot queries); the grid facade
  /// reports its richer decision through QueryProfile instead.
  PhysicalPlan plan;
};

/// Result of an isoline query (the exact-value specialization of Q2,
/// rendered as curves instead of regions).
struct IsolineQueryResult {
  Isoline isoline;
  QueryStats stats;
};

/// The public facade: a self-contained continuous-field database. `Build`
/// copies the field's cells into paged storage (clustered as the chosen
/// index dictates) and constructs the value index; afterwards the source
/// Field is no longer referenced. Supports both query classes of the
/// paper:
///  - Q2 `ValueQuery`: F^-1([w', w'']) -> regions (the paper's subject);
///  - Q1 `PointQuery`: F(v') -> value, via the 2-D R*-tree over cell MBRs.
///
/// Threading model: every query entry point is const and safe to call
/// from any number of threads concurrently on one open database — the
/// core (index, spatial tree, value range) is immutable after
/// Build/Open, the buffer pool is internally sharded, and per-query
/// mutable state lives in a QueryContext the caller may supply (one per
/// thread; the context-less overloads use a local). The mutating
/// operations — UpdateCellValues, Save, Scrub, Close — are not
/// synchronized against queries or each other; callers must exclude
/// them externally (see DESIGN.md §11).
class FieldDatabase {
 public:
  static StatusOr<std::unique_ptr<FieldDatabase>> Build(
      const Field& field, const FieldDatabaseOptions& options = {});

  ~FieldDatabase();

  /// Persists the database as `<prefix>.pages` (the checksummed page
  /// file) plus `<prefix>.meta` (a small text catalog: page size,
  /// method, tree roots, subfield table, value range, domain). The save
  /// is crash-safe: both files are written to `.tmp` siblings, fsynced,
  /// then atomically renamed over the previous snapshot — a crash at
  /// any point leaves either the old snapshot or the new one loadable,
  /// never a torn mix (each Save stamps a fresh epoch into every page
  /// header and the catalog, so a mix is detected as corruption).
  Status Save(const std::string& prefix);

  /// Deterministic interruption points inside Save, in pipeline order —
  /// the engine-wide SnapshotCrashPoint (core/field_engine.h), aliased
  /// for the existing crash-matrix tests.
  using SaveCrashPoint = SnapshotCrashPoint;

  /// Save that stops at `crash_point` (kNone = a normal Save).
  Status SaveWithCrashPointForTest(const std::string& prefix,
                                   SaveCrashPoint crash_point) {
    return SaveImpl(prefix, crash_point);
  }

  /// Save that stops ("crashes") after the temp files are durable but
  /// before either rename. Exists so tests can prove the previous
  /// snapshot survives an interrupted save.
  Status SaveCrashBeforeRenameForTest(const std::string& prefix);

  /// What recovery did during Open — the engine-wide
  /// EngineRecoveryReport (core/field_engine.h), aliased for existing
  /// callers.
  using RecoveryReport = EngineRecoveryReport;

  /// Reopen options. `wal_mode` both arms logging for the reopened
  /// database and controls what happens to an existing log: any mode
  /// replays committed frames; kOff then folds them into a fresh
  /// checkpoint and deletes the log, the others keep appending to it.
  struct OpenOptions {
    size_t pool_pages = 1024;
    /// See FieldDatabaseOptions::readahead_pages.
    size_t readahead_pages = BufferPool::kDefaultReadaheadPages;
    WalMode wal_mode = WalMode::kOff;
    /// Optional out-param describing the replay (may be null).
    RecoveryReport* recovery_report = nullptr;
    /// See FieldDatabaseOptions::event_log_path. When set, Open also
    /// appends a "recovery" event describing the replay.
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
  };

  /// Reopens a database persisted by Save. Queries run against the
  /// on-disk page file through a buffer pool of `pool_pages` frames.
  /// If `<prefix>.wal` exists, its committed frames are replayed first
  /// (see OpenOptions::wal_mode).
  static StatusOr<std::unique_ptr<FieldDatabase>> Open(
      const std::string& prefix, size_t pool_pages = 1024);
  static StatusOr<std::unique_ptr<FieldDatabase>> Open(
      const std::string& prefix, const OpenOptions& options);

  /// Snapshot epoch of the catalog at `prefix`, without opening the
  /// database (read-only). Diagnostics use it to split a log's frames
  /// into replayable (current epoch) and superseded (older) without
  /// triggering a replay.
  static StatusOr<uint32_t> PeekEpoch(const std::string& prefix);

  FieldDatabase(const FieldDatabase&) = delete;
  FieldDatabase& operator=(const FieldDatabase&) = delete;

  /// Field value query: exact answer regions where
  /// query.min <= F(p) <= query.max, plus per-query stats. The overload
  /// taking a QueryContext lets a thread reuse its scratch across
  /// queries; the other creates a local context per call.
  Status ValueQuery(const ValueInterval& query, ValueQueryResult* out) const;
  Status ValueQuery(const ValueInterval& query, ValueQueryResult* out,
                    QueryContext* ctx) const;

  /// Shared-scan execution of several value queries as ONE sweep
  /// (DESIGN.md §17): the members' hull is planned like a single query,
  /// executed in one pass over the clustered store, and demultiplexed —
  /// every visited cell is tested against each member's interval
  /// exactly, so each member's Region/answer_cells are bit-identical to
  /// running it alone. Per-member IoStats are leader-charged: the
  /// sweep's whole I/O lands on member 0 and the riders report zero, so
  /// the members' I/O sums to exactly the one sweep (never more than
  /// the isolated total). Each member's wall_seconds is the sweep's
  /// wall time (they all waited for it). A one-member batch degrades to
  /// the single-query path. Same threading contract as ValueQuery.
  Status SharedValueQuery(const std::vector<ValueInterval>& queries,
                          std::vector<ValueQueryResult>* out) const;
  Status SharedValueQuery(const std::vector<ValueInterval>& queries,
                          std::vector<ValueQueryResult>* out,
                          QueryContext* ctx) const;

  /// Stats-only shared scan (see SharedValueQuery; the figure benches'
  /// shape — no polygon materialization).
  Status SharedValueQueryStats(const std::vector<ValueInterval>& queries,
                               std::vector<QueryStats>* out) const;
  Status SharedValueQueryStats(const std::vector<ValueInterval>& queries,
                               std::vector<QueryStats>* out,
                               QueryContext* ctx) const;

  /// Like ValueQuery but skips materializing polygons: only the stats and
  /// the answer-cell count are produced. This is what the figure benches
  /// time (the paper measures query processing, whose cost is filtering +
  /// candidate retrieval + inverse interpolation; polygon bookkeeping is
  /// identical work across methods either way).
  Status ValueQueryStats(const ValueInterval& query, QueryStats* out) const;
  Status ValueQueryStats(const ValueInterval& query, QueryStats* out,
                         QueryContext* ctx) const;

  /// ValueQueryStats with per-phase tracing: `out->trace` is populated
  /// with the pipeline's spans ("plan", "filter", "fetch", "estimate" on
  /// indexed plans; "plan"/"fetch"/"estimate" when the planner chose the
  /// fused scan, and "fetch"/"estimate" alone on the corruption
  /// fallback's rerun). Span I/O deltas sum exactly to `out->io`. Slower
  /// than the untraced path (per-cell clock reads in the estimation
  /// step), so benches keep using ValueQueryStats.
  Status TracedValueQueryStats(const ValueInterval& query,
                               QueryStats* out) const;
  Status TracedValueQueryStats(const ValueInterval& query, QueryStats* out,
                               QueryContext* ctx) const;

  /// One subfield the filtering step selected for an explained query.
  /// `matching_cells` counts cells inside [start, end) whose own value
  /// interval really intersects the query — the rest are the false
  /// positives the paper's cost model trades for a smaller tree.
  struct ExplainSubfield {
    uint32_t id = 0;
    uint64_t start = 0;  // [start, end) positions in the clustered store
    uint64_t end = 0;
    ValueInterval interval;
    uint64_t cells = 0;
    uint64_t matching_cells = 0;
  };

  /// The full query plan + execution profile produced by
  /// ExplainValueQuery.
  struct ExplainResult {
    /// The database's index method. Note the default is only a
    /// placeholder: ExplainValueQuery stamps the actual method before
    /// doing anything else (including argument validation), so even a
    /// failed explain never reports a method the database doesn't use.
    IndexMethod method = IndexMethod::kLinearScan;
    ValueInterval query;
    /// Executed-query measurements; `stats.trace` holds the phase spans.
    QueryStats stats;
    /// Subfields touched, in store order. Empty for methods without a
    /// subfield partition (LinearScan, I-All, RowIp).
    std::vector<ExplainSubfield> subfields;
    /// (candidates - answers) / candidates; 0 when there were no
    /// candidates.
    double false_positive_ratio = 0.0;
    /// R*-tree descent profile of the filtering step.
    uint64_t rtree_nodes_visited = 0;
    uint32_t rtree_height = 0;
    /// What the simulated 2002 disk would charge for this query's
    /// physical read pattern (DiskModel on sequential/random reads).
    double est_disk_ms = 0.0;
    /// The planner's decision for this query: which physical plan ran,
    /// what it was predicted to cost, what the alternative would have
    /// cost, and why. `predicted_cost_ms` is comparable to `est_disk_ms`
    /// (same disk model; predicted vs observed read pattern).
    PlanKind chosen_plan = PlanKind::kFusedScan;
    double predicted_cost_ms = 0.0;
    double predicted_scan_cost_ms = 0.0;
    double predicted_index_cost_ms = 0.0;
    std::string planner_reason;

    std::string ToString() const;
    std::string ToJson() const;
  };

  /// EXPLAIN for a value query: runs the query cold (buffer pool
  /// cleared) with tracing on, then annotates the result with the
  /// subfields the filter chose, their false-positive ratios, the
  /// R*-tree descent count, and the disk-model cost of the observed I/O.
  /// Metrics recording is forced on for the duration (EXPLAIN is
  /// explicitly diagnostic); the previous enabled state is restored.
  Status ExplainValueQuery(const ValueInterval& query,
                           ExplainResult* out) const;

  /// One hit of a nearest-value query.
  struct NearestCell {
    CellId id = kInvalidCellId;
    /// Distance from the query value to the cell's value interval
    /// (0 when the interval contains it).
    double distance = 0.0;
    ValueInterval interval;
  };

  /// The paper's "value approximately equal to w'" need (Section 2.2.2)
  /// without guessing an error bound: the k cells whose value intervals
  /// are nearest to `w`, ascending by distance. I-All answers via
  /// best-first R*-tree NN; subfield methods refine nearest subfields;
  /// LinearScan scans.
  Status NearestValueQuery(double w, size_t k,
                           std::vector<NearestCell>* out) const;

  /// Isoline query: the curves where F(p) == level, assembled into
  /// polylines (the van Kreveld [24] use case: the filtering step runs
  /// with the degenerate interval [level, level], then per-cell segments
  /// are extracted and stitched).
  Status IsolineQuery(double level, IsolineQueryResult* out) const;

  /// Conventional point query.
  StatusOr<double> PointQuery(Point2 p) const;

  /// Replaces the sample values of cell `id` (e.g. a new sensor reading;
  /// cell geometry is immutable). The value index maintains its interval
  /// entries so subsequent queries see the new values; subfield methods
  /// refresh the touched subfield's interval without re-optimizing the
  /// partition.
  Status UpdateCellValues(CellId id, const std::vector<double>& values);

  /// One element of a batched update.
  struct CellUpdate {
    CellId id = kInvalidCellId;
    std::vector<double> values;
  };

  /// Applies a batch of updates with group commit: all frames are
  /// appended to the WAL and made durable by a single Commit (one fsync
  /// in kFsyncOnCommit) before any is applied. All-or-nothing at the
  /// log level — validation failures reject the whole batch up front.
  Status UpdateCellValuesBatch(const std::vector<CellUpdate>& updates);

  /// Runs a workload of queries and averages their stats. The buffer pool
  /// is cleared before each query so every query starts cold, matching
  /// the paper's independent random queries.
  StatusOr<WorkloadStats> RunWorkload(const std::vector<ValueInterval>& queries,
                                      bool cold_cache = true) const;

  /// Result of a Scrub() pass over the page file.
  struct ScrubReport {
    uint64_t pages_checked = 0;
    /// Pages whose integrity verification reported kCorruption.
    std::vector<PageId> corrupt_pages;
    bool clean() const { return corrupt_pages.empty(); }
  };

  /// Flushes dirty frames, then walks every page of the backing file
  /// verifying integrity (checksums for disk files). Corrupt pages are
  /// collected in the report rather than aborting the walk; transient
  /// read faults are retried with the same bounded policy as Fetch.
  /// Returns non-OK only for errors that persist after retries.
  Status Scrub(ScrubReport* out);

  /// Flushes and closes the underlying buffer pool, surfacing write-back
  /// errors the destructor could only log. The database is unusable
  /// after a successful Close. In WAL mode the log is synced and closed
  /// and the dirty frames are *dropped* (no-steal: the disk keeps the
  /// last checkpoint, the log keeps everything since — the next Open
  /// replays it).
  Status Close();

  /// Simulated power cut (tests): everything not fsynced is gone. The
  /// WAL is truncated to its durable watermark and the buffer pool is
  /// abandoned without write-back. The database is unusable afterwards;
  /// destroy it and Open the prefix again to exercise recovery.
  Status SimulateCrashForTest();

  /// The write-ahead log, when the database runs in a WAL mode (null
  /// otherwise). Exposed for the CLI's `wal` subcommand and the crash
  /// tests' deterministic fault hooks.
  WriteAheadLog* wal() const { return engine_.wal(); }

  /// Attaches a structured event log after the fact (Build/Open attach
  /// one automatically when their options name a path). Replaces any
  /// previously attached log.
  Status AttachEventLog(const std::string& path,
                        double slow_query_threshold_ms);
  /// The attached event log, or null. Never used for page I/O.
  EventLog* event_log() const { return engine_.event_log(); }
  /// Adjusts the slow-query threshold without re-opening the log
  /// (bench_obs_overhead toggles it between measurement passes). Not
  /// thread-safe against concurrent queries.
  void set_slow_query_threshold_ms(double ms) {
    engine_.set_slow_query_threshold_ms(ms);
  }
  double slow_query_threshold_ms() const {
    return engine_.slow_query_threshold_ms();
  }

  /// Cumulative count of queries that fell back from a corrupt value
  /// index to a full store scan (see QueryStats::index_fallbacks).
  uint64_t index_fallbacks() const {
    return index_fallbacks_.load(std::memory_order_relaxed);
  }

  /// The planner's decision for `query` under the current mode, without
  /// executing anything. What ValueQuery would run; also the CLI's
  /// `plan` subcommand.
  PhysicalPlan PlanValueQuery(const ValueInterval& query) const {
    return planner_->Plan(query, planner_mode_.load(std::memory_order_relaxed));
  }

  /// Access-path policy for subsequent value queries. Safe to flip
  /// between queries from the owning thread; queries in flight read the
  /// mode once at entry.
  void set_planner_mode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }
  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }

  const QueryPlanner& planner() const { return *planner_; }
  const ValueIndex& index() const { return *index_; }
  const IndexBuildInfo& build_info() const { return index_->build_info(); }
  IndexMethod method() const { return index_->method(); }
  const ValueInterval& value_range() const { return value_range_; }
  const Rect2& domain() const { return domain_; }
  BufferPool& pool() const { return *engine_.pool(); }

  /// The subfield partition, when the method has one.
  const std::vector<Subfield>* subfields() const;

 private:
  FieldDatabase() = default;

  Status SaveImpl(const std::string& prefix, SaveCrashPoint crash_point);

  /// Pre-apply validation for the WAL path: a frame is logged (and
  /// fsynced) only for an update that will succeed, so replay never
  /// meets an invalid frame. Mirrors the checks ApplyValueUpdate runs.
  Status ValidateUpdate(CellId id, const std::vector<double>& values) const;

  /// Shared Q2 dispatch, now a thin plan builder: asks the QueryPlanner
  /// which physical plan to run (under a "plan" span), then executes it
  /// with the composable operators from plan/operators.h — RunFuseOp for
  /// kFusedScan, RunFilterOp + RunScanOp(EstimateOp) for kIndexedFilter.
  /// A corrupt index page during filtering degrades the query to the
  /// fused scan regardless of the plan (the store holds the truth; the
  /// index is only an accelerator). Uses `ctx` for scratch and span I/O
  /// attribution; a non-null `trace` records the phases as spans.
  Status AnswerValueQuery(const ValueInterval& query, Region* region,
                          QueryStats* stats, QueryContext* ctx,
                          QueryTrace* trace = nullptr) const;

  /// The fused multi-query sweep behind SharedValueQuery[Stats]: plans
  /// the members' hull, runs it as one pass (fused scan, or indexed
  /// filter+fetch over the envelope's candidate runs), and evaluates
  /// every member's predicate per visited cell. `regions` is null for
  /// stats-only batches, else one Region per member. Degrades to the
  /// fused scan on a corrupt index exactly like AnswerValueQuery (every
  /// member reports the fallback).
  Status AnswerShared(const std::vector<ValueInterval>& queries,
                      std::vector<Region>* regions,
                      std::vector<QueryStats>* stats,
                      QueryContext* ctx) const;

  /// Constructs planner_ over the finished index (and subfield table,
  /// when the method has one). Called once at the end of Build and Open;
  /// the planner borrows index_/subfields() so it must be re-created if
  /// the index ever were (it isn't).
  void InitPlanner(PlannerMode mode);

  /// Appends a "slow_query" event when an event log is attached and the
  /// query's wall time reached the threshold. Re-plans the query (zero
  /// I/O, deterministic) to report the chosen plan and predicted cost
  /// next to the observed disk-model cost. Called from const query
  /// paths on any thread; EventLog synchronizes internally.
  void MaybeLogSlowQuery(const ValueInterval& query,
                         const QueryStats& stats) const;
  /// Appends `event` if an event log is attached (no-op otherwise),
  /// swallowing append errors after counting them — observability must
  /// never fail a query.
  void LogEvent(const EventLog::Event& event) const;

  /// The shared lifecycle core: page file, buffer pool, WAL, event log
  /// and snapshot epoch (core/field_engine.h). Declared first so the
  /// storage outlives the index and planner at destruction.
  FieldEngine engine_;
  std::unique_ptr<ValueIndex> index_;
  std::unique_ptr<QueryPlanner> planner_;
  /// Atomic so tests/benches can flip the policy between queries while
  /// reader threads are quiescent without formal UB; queries load it
  /// once at entry.
  std::atomic<PlannerMode> planner_mode_{PlannerMode::kAuto};
  std::optional<RStarTree<2>> spatial_;
  ValueInterval value_range_;
  Rect2 domain_;
  /// Mutable + atomic: the corruption fallback bumps it from const query
  /// paths, possibly on several threads at once.
  mutable std::atomic<uint64_t> index_fallbacks_{0};
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_FIELD_DATABASE_H_

#ifndef FIELDDB_CORE_FIELD_DATABASE_H_
#define FIELDDB_CORE_FIELD_DATABASE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/stats.h"
#include "field/field.h"
#include "field/isoline.h"
#include "field/region.h"
#include "index/i_all.h"
#include "index/i_hilbert.h"
#include "index/interval_quadtree.h"
#include "index/linear_scan.h"
#include "index/row_ip_index.h"
#include "index/value_index.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace fielddb {

/// Everything configurable about a FieldDatabase build.
struct FieldDatabaseOptions {
  IndexMethod method = IndexMethod::kIHilbert;
  uint32_t page_size = kDefaultPageSize;  // the paper uses 4 KB
  /// Buffer-pool frames. The default (1024 pages = 4 MB at the default
  /// page size) is small relative to the million-cell workloads, so page
  /// misses remain the dominant cost as in the paper's disk setting.
  size_t pool_pages = 1024;
  /// Build a 2-D R*-tree over cell MBRs for conventional (Q1) point
  /// queries.
  bool build_spatial_index = true;

  IHilbertIndex::Options ihilbert;
  IAllIndex::Options iall;
  IntervalQuadtreeIndex::Options iqt;
};

/// Result of a field value query (Q2).
struct ValueQueryResult {
  Region region;       // exact answer regions (estimation step output)
  QueryStats stats;
};

/// Result of an isoline query (the exact-value specialization of Q2,
/// rendered as curves instead of regions).
struct IsolineQueryResult {
  Isoline isoline;
  QueryStats stats;
};

/// The public facade: a self-contained continuous-field database. `Build`
/// copies the field's cells into paged storage (clustered as the chosen
/// index dictates) and constructs the value index; afterwards the source
/// Field is no longer referenced. Supports both query classes of the
/// paper:
///  - Q2 `ValueQuery`: F^-1([w', w'']) -> regions (the paper's subject);
///  - Q1 `PointQuery`: F(v') -> value, via the 2-D R*-tree over cell MBRs.
class FieldDatabase {
 public:
  static StatusOr<std::unique_ptr<FieldDatabase>> Build(
      const Field& field, const FieldDatabaseOptions& options = {});

  /// Persists the database as `<prefix>.pages` (the raw page file) plus
  /// `<prefix>.meta` (a small text catalog: page size, method, tree
  /// roots, subfield table, value range, domain).
  Status Save(const std::string& prefix);

  /// Reopens a database persisted by Save. Queries run against the
  /// on-disk page file through a buffer pool of `pool_pages` frames.
  static StatusOr<std::unique_ptr<FieldDatabase>> Open(
      const std::string& prefix, size_t pool_pages = 1024);

  FieldDatabase(const FieldDatabase&) = delete;
  FieldDatabase& operator=(const FieldDatabase&) = delete;

  /// Field value query: exact answer regions where
  /// query.min <= F(p) <= query.max, plus per-query stats.
  Status ValueQuery(const ValueInterval& query, ValueQueryResult* out);

  /// Like ValueQuery but skips materializing polygons: only the stats and
  /// the answer-cell count are produced. This is what the figure benches
  /// time (the paper measures query processing, whose cost is filtering +
  /// candidate retrieval + inverse interpolation; polygon bookkeeping is
  /// identical work across methods either way).
  Status ValueQueryStats(const ValueInterval& query, QueryStats* out);

  /// One hit of a nearest-value query.
  struct NearestCell {
    CellId id = kInvalidCellId;
    /// Distance from the query value to the cell's value interval
    /// (0 when the interval contains it).
    double distance = 0.0;
    ValueInterval interval;
  };

  /// The paper's "value approximately equal to w'" need (Section 2.2.2)
  /// without guessing an error bound: the k cells whose value intervals
  /// are nearest to `w`, ascending by distance. I-All answers via
  /// best-first R*-tree NN; subfield methods refine nearest subfields;
  /// LinearScan scans.
  Status NearestValueQuery(double w, size_t k,
                           std::vector<NearestCell>* out);

  /// Isoline query: the curves where F(p) == level, assembled into
  /// polylines (the van Kreveld [24] use case: the filtering step runs
  /// with the degenerate interval [level, level], then per-cell segments
  /// are extracted and stitched).
  Status IsolineQuery(double level, IsolineQueryResult* out);

  /// Conventional point query.
  StatusOr<double> PointQuery(Point2 p);

  /// Replaces the sample values of cell `id` (e.g. a new sensor reading;
  /// cell geometry is immutable). The value index maintains its interval
  /// entries so subsequent queries see the new values; subfield methods
  /// refresh the touched subfield's interval without re-optimizing the
  /// partition.
  Status UpdateCellValues(CellId id, const std::vector<double>& values);

  /// Runs a workload of queries and averages their stats. The buffer pool
  /// is cleared before each query so every query starts cold, matching
  /// the paper's independent random queries.
  StatusOr<WorkloadStats> RunWorkload(const std::vector<ValueInterval>& queries,
                                      bool cold_cache = true);

  const ValueIndex& index() const { return *index_; }
  const IndexBuildInfo& build_info() const { return index_->build_info(); }
  IndexMethod method() const { return index_->method(); }
  const ValueInterval& value_range() const { return value_range_; }
  const Rect2& domain() const { return domain_; }
  BufferPool& pool() { return *pool_; }

  /// The subfield partition, when the method has one.
  const std::vector<Subfield>* subfields() const;

 private:
  FieldDatabase() = default;

  Status EstimateCandidates(const std::vector<uint64_t>& positions,
                            const ValueInterval& query, Region* region,
                            QueryStats* stats);

  /// Single-pass scan-and-estimate used for the LinearScan method (the
  /// paper's baseline touches every store page exactly once).
  Status FusedScanQuery(const ValueInterval& query, Region* region,
                        QueryStats* stats);

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<ValueIndex> index_;
  std::optional<RStarTree<2>> spatial_;
  ValueInterval value_range_;
  Rect2 domain_;
};

}  // namespace fielddb

#endif  // FIELDDB_CORE_FIELD_DATABASE_H_

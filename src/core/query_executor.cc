#include "core/query_executor.h"

#include <algorithm>
#include <chrono>

#include "core/query_context.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace_buffer.h"

namespace fielddb {

QueryExecutor::QueryExecutor(const FieldDatabase* db, const Options& options)
    : db_(db),
      queue_capacity_(std::max<size_t>(1, options.queue_capacity)),
      slo_(options.slo),
      shared_scan_(options.shared_scan),
      max_scan_group_(std::max<size_t>(1, options.max_scan_group)),
      queue_wait_us_(
          MetricsRegistry::Default().GetHistogram("exec.queue_wait_us")),
      shared_groups_(MetricsRegistry::Default().GetCounter(
          "executor.shared_scan_groups")) {
  const size_t n = std::max<size_t>(1, options.threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryExecutor::~QueryExecutor() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryExecutor::Submit(const ValueInterval& query, Callback done) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < queue_capacity_; });
    queue_.push_back(Task{query, std::move(done), nullptr,
                          std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  not_empty_.notify_one();
}

void QueryExecutor::SubmitTask(std::function<void()> work) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < queue_capacity_; });
    queue_.push_back(Task{ValueInterval{}, nullptr, std::move(work),
                          std::chrono::steady_clock::now()});
    ++in_flight_;
  }
  not_empty_.notify_one();
}

void QueryExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void QueryExecutor::RecordQueueWait(
    const Task& task, std::chrono::steady_clock::time_point dequeued) const {
  // Queue wait: the stretch between Submit's enqueue and the dequeue.
  // Recorded even for queries that go on to fail — the wait happened
  // either way.
  const double wait_s =
      std::chrono::duration<double>(dequeued - task.enqueued).count();
  queue_wait_us_->Record(wait_s * 1e6);
  if (TraceBuffer::enabled()) {
    TraceBuffer& tb = TraceBuffer::Global();
    tb.Record("queue.wait", "queue-wait", tb.TimestampNs(task.enqueued),
              static_cast<uint64_t>(wait_s * 1e9));
  }
}

void QueryExecutor::RecordSlo(const Task& task,
                              const QueryStats& stats) const {
  if (slo_ == nullptr) return;
  const ValueInterval& range = db_->value_range();
  const double span = range.max - range.min;
  const double width = task.query.max - task.query.min;
  const double frac = span > 0 ? width / span : 1.0;
  slo_->Record(slo_->ClassForWidthFraction(frac),
               stats.wall_seconds * 1000.0);
}

void QueryExecutor::WorkerLoop() {
  // The worker's private per-query state; reused for every query this
  // thread runs.
  QueryContext ctx;
  std::vector<Task> group;
  for (;;) {
    group.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (shared_scan_ && group.front().work == nullptr && !queue_.empty()) {
        // Shared-scan grouping, at head-dequeue only: greedily admit
        // still-queued queries that overlap the group's envelope and
        // whose admission the planner prices as no more expensive
        // fused than isolated. Members only ever move EARLIER than
        // their FIFO turn and the head never waits for arrivals, so
        // grouping cannot worsen any query's latency; the size cap
        // bounds the per-cell predicate fan-out.
        ValueInterval envelope = group.front().query;
        for (auto it = queue_.begin();
             it != queue_.end() && group.size() < max_scan_group_;) {
          if (it->work == nullptr && envelope.Intersects(it->query) &&
              db_->planner()
                  .CostSharedScan(envelope, it->query, db_->planner_mode())
                  .share) {
            envelope.Extend(it->query);
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    // More than one queue slot may have been freed; wake every blocked
    // Submit when it was.
    if (group.size() > 1) {
      not_full_.notify_all();
    } else {
      not_full_.notify_one();
    }

    const auto dequeued = std::chrono::steady_clock::now();
    for (const Task& task : group) RecordQueueWait(task, dequeued);

    if (group.size() == 1) {
      Task& task = group.front();
      if (task.work != nullptr) {
        task.work();
      } else {
        QueryStats stats;
        const Status s = db_->ValueQueryStats(task.query, &stats, &ctx);
        RecordSlo(task, stats);
        if (task.done) task.done(s, stats);
      }
    } else {
      shared_groups_->Increment();
      std::vector<ValueInterval> queries;
      queries.reserve(group.size());
      for (const Task& task : group) queries.push_back(task.query);
      std::vector<QueryStats> stats;
      const Status s = db_->SharedValueQueryStats(queries, &stats, &ctx);
      for (size_t i = 0; i < group.size(); ++i) {
        const QueryStats& qs = i < stats.size() ? stats[i] : QueryStats{};
        RecordSlo(group[i], qs);
        if (group[i].done) group[i].done(s, qs);
      }
    }

    bool now_idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= group.size();
      now_idle = (in_flight_ == 0);
    }
    if (now_idle) idle_.notify_all();
  }
}

Status QueryExecutor::RunBatch(const std::vector<ValueInterval>& queries,
                               BatchResult* out) {
  *out = BatchResult{};
  out->per_query.resize(queries.size());
  if (queries.empty()) return Status::OK();

  // Failure bookkeeping shared by the callbacks; guarded by its own
  // mutex so it never contends with the queue lock.
  std::mutex err_mu;

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < queries.size(); ++i) {
    // Each callback writes its own slot of per_query — disjoint
    // locations, so no lock is needed for the stats themselves.
    QueryStats* slot = &out->per_query[i];
    Submit(queries[i], [slot, out, &err_mu](const Status& s,
                                            const QueryStats& stats) {
      if (s.ok()) {
        *slot = stats;
      } else {
        std::lock_guard<std::mutex> lock(err_mu);
        ++out->failed;
        if (out->first_error.ok()) out->first_error = s;
      }
    });
  }
  Drain();
  out->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> wall_ms;
  wall_ms.reserve(out->per_query.size());
  for (const QueryStats& qs : out->per_query) {
    out->total.Accumulate(qs);
    wall_ms.push_back(qs.wall_seconds * 1000.0);
  }
  std::sort(wall_ms.begin(), wall_ms.end());
  out->p50_wall_ms = PercentileOfSorted(wall_ms, 50);
  out->p90_wall_ms = PercentileOfSorted(wall_ms, 90);
  out->p99_wall_ms = PercentileOfSorted(wall_ms, 99);
  const uint64_t succeeded = queries.size() - out->failed;
  out->qps = out->wall_seconds > 0.0
                 ? static_cast<double>(succeeded) / out->wall_seconds
                 : 0.0;
  return out->first_error;
}

}  // namespace fielddb

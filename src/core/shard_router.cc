// The shard-per-core serving layer: Hilbert-range partitioning at
// Build, a text catalog (`<prefix>.router`) persisting the partition,
// and the cost-aware scatter/gather query paths (DESIGN.md §18).

#include "core/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "core/field_engine.h"
#include "obs/metrics.h"

namespace fielddb {

namespace {

constexpr const char* kRouterMagic = "fielddb-router-v1";

std::string ShardPrefix(const std::string& prefix, uint32_t k) {
  return prefix + ".s" + std::to_string(k);
}

/// Scatter barrier: the router thread blocks until every shard lane has
/// run its closure.
class Latch {
 public:
  explicit Latch(size_t count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() *
         1000.0;
}

/// Merges a shard's contribution into the gathered stats. Everything
/// sums except wall_seconds, which the router measures itself (the
/// shards ran concurrently — their walls overlap).
void MergeStats(const QueryStats& shard_stats, QueryStats* out) {
  const double wall = out->wall_seconds;
  out->Accumulate(shard_stats);
  out->wall_seconds = wall;
}

}  // namespace

ShardRouter::AdmissionSlot::AdmissionSlot(const ShardRouter* router)
    : router_(router) {
  std::unique_lock<std::mutex> lock(router_->admission_mu_);
  if (router_->inflight_ >= router_->max_inflight_) {
    router_->admission_waits_->Increment();
    router_->admission_cv_.wait(lock, [this] {
      return router_->inflight_ < router_->max_inflight_;
    });
  }
  ++router_->inflight_;
}

ShardRouter::AdmissionSlot::~AdmissionSlot() {
  {
    std::lock_guard<std::mutex> lock(router_->admission_mu_);
    --router_->inflight_;
  }
  router_->admission_cv_.notify_one();
}

void ShardRouter::Init(size_t max_inflight,
                       std::vector<SloObjective> slo_classes) {
  max_inflight_ = max_inflight > 0 ? max_inflight : 4 * shards_.size();
  slo_ = std::make_unique<SloTracker>(
      slo_classes.empty() ? SloTracker::DefaultQueryClasses()
                          : std::move(slo_classes));
  MetricsRegistry& reg = MetricsRegistry::Default();
  queries_ = reg.GetCounter("router.queries");
  shards_touched_ = reg.GetCounter("router.shards_touched");
  shards_skipped_ = reg.GetCounter("router.shards_skipped");
  admission_waits_ = reg.GetCounter("router.admission_waits");
  groups_fused_ = reg.GetCounter("router.shared_groups_fused");
  groups_split_ = reg.GetCounter("router.shared_groups_split");

  global_map_.clear();
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->descriptor().num_cells();
  global_map_.resize(total);
  for (const auto& shard : shards_) {
    const ShardDescriptor& d = shard->descriptor();
    for (CellId local = 0; local < d.local_to_global.size(); ++local) {
      global_map_[d.local_to_global[local]] = {d.id, local};
    }
  }
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Build(
    const Field& field, const ShardRouterOptions& options) {
  const CellId n = field.NumCells();
  if (n == 0) return Status::InvalidArgument("field has no cells");
  if (options.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.db.wal_mode != WalMode::kOff && options.wal_prefix.empty()) {
    return Status::InvalidArgument(
        "wal_mode requires wal_prefix (the future save prefix)");
  }
  const uint32_t num_shards =
      static_cast<uint32_t>(std::min<uint64_t>(options.shards, n));

  const std::vector<std::pair<uint64_t, CellId>> keyed =
      HilbertPartitionKeys(field);

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->domain_ = field.Domain();
  router->shards_.reserve(num_shards);
  for (uint32_t k = 0; k < num_shards; ++k) {
    // Near-equal contiguous runs of the global linearization.
    const uint64_t begin = static_cast<uint64_t>(k) * n / num_shards;
    const uint64_t end = static_cast<uint64_t>(k + 1) * n / num_shards;
    ShardDescriptor desc;
    desc.id = k;
    desc.key_begin = keyed[begin].first;
    desc.key_end = keyed[end - 1].first;
    desc.local_to_global.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      desc.local_to_global.push_back(keyed[i].second);
    }
    if (options.db.method == IndexMethod::kRowIp) {
      // RowIpIndex infers row structure from the field's native order
      // (non-decreasing lower-y). The partition stays Hilbert-ranged —
      // same cell sets, same catalog key ranges — but within the shard
      // the slice presents cells ascending by global id, which for a
      // row-major source grid restores row-major order.
      std::sort(desc.local_to_global.begin(), desc.local_to_global.end());
    }

    FieldSlice slice(&field, desc.local_to_global);
    FieldDatabaseOptions so = options.db;
    if (so.wal_mode != WalMode::kOff) {
      so.wal_path = ShardPrefix(options.wal_prefix, k) + ".wal";
    }
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Build(slice, so);
    if (!db.ok()) return db.status();
    router->shards_.push_back(std::make_unique<Shard>(
        std::move(desc), std::move(*db), options.lane_threads,
        options.lane_queue_capacity));
  }
  router->Init(options.max_inflight, options.slo_classes);
  return router;
}

Status ShardRouter::Save(const std::string& prefix) {
  for (auto& shard : shards_) {
    const Status s = shard->db().Save(ShardPrefix(prefix, shard->descriptor().id));
    if (!s.ok()) return s;
  }
  // The catalog is pure partition metadata — identical across saves of
  // the same build — written last so a crash anywhere above leaves the
  // previous catalog describing shards that all still open (each at
  // its own epoch, each with its own WAL bridging its gap).
  const std::string tmp = prefix + ".router.tmp";
  const Status w = WriteCatalogFile(tmp, [this](std::FILE* f) {
    if (std::fprintf(f, "%s\n", kRouterMagic) < 0) return false;
    if (std::fprintf(f, "shards %zu\n", shards_.size()) < 0) return false;
    if (std::fprintf(f, "num_cells %" PRIu64 "\n",
                     static_cast<uint64_t>(global_map_.size())) < 0) {
      return false;
    }
    for (const auto& shard : shards_) {
      const ShardDescriptor& d = shard->descriptor();
      if (std::fprintf(f, "shard %u %" PRIu64 " %" PRIu64 " %" PRIu64 "\n",
                       d.id, d.num_cells(), d.key_begin, d.key_end) < 0) {
        return false;
      }
      for (size_t i = 0; i < d.local_to_global.size(); ++i) {
        if (std::fprintf(f, i + 1 == d.local_to_global.size() ? "%u\n" : "%u ",
                         d.local_to_global[i]) < 0) {
          return false;
        }
      }
    }
    return true;
  });
  if (!w.ok()) return w;
  const Status r = RenameFile(tmp, prefix + ".router");
  if (!r.ok()) return r;
  SyncParentDir(prefix + ".router");
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& prefix, const OpenOptions& options) {
  const std::string path = prefix + ".router";
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("no router catalog at " + path);

  const auto bad = [&](const std::string& what) {
    std::fclose(f);
    return Status::Corruption("router catalog " + path + ": " + what);
  };

  char magic[64];
  if (std::fscanf(f, "%63s", magic) != 1 ||
      std::string(magic) != kRouterMagic) {
    return bad("bad magic");
  }
  char key[64];
  uint64_t num_shards = 0;
  uint64_t num_cells = 0;
  if (std::fscanf(f, "%63s %" SCNu64, key, &num_shards) != 2 ||
      std::string(key) != "shards" || num_shards == 0 ||
      num_shards > (uint64_t{1} << 16)) {
    return bad("bad shard count");
  }
  if (std::fscanf(f, "%63s %" SCNu64, key, &num_cells) != 2 ||
      std::string(key) != "num_cells" || num_cells == 0) {
    return bad("bad cell count");
  }

  struct ParsedShard {
    ShardDescriptor desc;
  };
  std::vector<ParsedShard> parsed(num_shards);
  std::vector<bool> seen(num_cells, false);
  uint64_t total = 0;
  for (uint64_t k = 0; k < num_shards; ++k) {
    uint32_t id = 0;
    uint64_t cells = 0;
    ShardDescriptor& d = parsed[k].desc;
    if (std::fscanf(f, "%63s %u %" SCNu64 " %" SCNu64 " %" SCNu64, key, &id,
                    &cells, &d.key_begin, &d.key_end) != 5 ||
        std::string(key) != "shard" || id != k || cells == 0) {
      return bad("bad shard header");
    }
    d.id = id;
    d.local_to_global.resize(cells);
    for (uint64_t i = 0; i < cells; ++i) {
      uint32_t gid = 0;
      if (std::fscanf(f, "%u", &gid) != 1 || gid >= num_cells ||
          seen[gid]) {
        return bad("id map is not a permutation");
      }
      seen[gid] = true;
      d.local_to_global[i] = gid;
    }
    total += cells;
  }
  std::fclose(f);
  if (total != num_cells) return Status::Corruption("router catalog " + path + ": cell counts disagree");

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  RouterRecoveryReport report;
  for (uint64_t k = 0; k < num_shards; ++k) {
    FieldDatabase::OpenOptions oo;
    oo.pool_pages = options.pool_pages;
    oo.readahead_pages = options.readahead_pages;
    oo.wal_mode = options.wal_mode;
    FieldDatabase::RecoveryReport shard_report;
    oo.recovery_report = &shard_report;
    StatusOr<std::unique_ptr<FieldDatabase>> db =
        FieldDatabase::Open(ShardPrefix(prefix, static_cast<uint32_t>(k)), oo);
    if (!db.ok()) return db.status();
    report.frames_replayed += shard_report.frames_replayed;
    report.stale_frames += shard_report.stale_frames;
    report.torn_bytes += shard_report.torn_bytes;
    if (shard_report.frames_replayed > 0) ++report.shards_with_replay;
    report.per_shard.push_back(std::move(shard_report));
    router->shards_.push_back(std::make_unique<Shard>(
        std::move(parsed[k].desc), std::move(*db), options.lane_threads,
        options.lane_queue_capacity));
  }
  router->domain_ = router->shards_.front()->db().domain();
  router->Init(options.max_inflight, options.slo_classes);
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return router;
}

ShardRouter::~ShardRouter() = default;

void ShardRouter::RecordSlo(const ValueInterval& query,
                            double wall_ms) const {
  const ValueInterval range = value_range();
  const double span = range.max - range.min;
  const double width = query.max - query.min;
  const double frac = span > 0 ? width / span : 1.0;
  slo_->Record(slo_->ClassForWidthFraction(frac), wall_ms);
}

Status ShardRouter::ValueQueryStats(const ValueInterval& query,
                                    QueryStats* out,
                                    RouterQueryProfile* profile) const {
  *out = QueryStats{};
  AdmissionSlot slot(this);
  queries_->Increment();
  const auto t0 = std::chrono::steady_clock::now();

  const size_t n = shards_.size();
  std::vector<QueryStats> per_shard(n);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<uint32_t> targets;
  for (uint32_t k = 0; k < n; ++k) {
    if (shards_[k]->MayContain(query)) targets.push_back(k);
  }
  shards_touched_->Increment(targets.size());
  shards_skipped_->Increment(n - targets.size());

  Latch latch(targets.size());
  for (uint32_t k : targets) {
    shards_[k]->lane().SubmitTask([this, k, &query, &per_shard, &statuses,
                                   &latch] {
      const auto s0 = std::chrono::steady_clock::now();
      statuses[k] = shards_[k]->db().ValueQueryStats(query, &per_shard[k]);
      shards_[k]->RecordQuery(MsSince(s0));
      latch.CountDown();
    });
  }
  latch.Wait();

  for (uint32_t k : targets) {
    if (!statuses[k].ok()) return statuses[k];
    MergeStats(per_shard[k], out);
  }
  const double wall_ms = MsSince(t0);
  out->wall_seconds = wall_ms / 1000.0;
  RecordSlo(query, wall_ms);
  if (profile != nullptr) {
    profile->shards_touched = static_cast<uint32_t>(targets.size());
    profile->shards_skipped = static_cast<uint32_t>(n - targets.size());
    profile->per_shard = std::move(per_shard);
  }
  return Status::OK();
}

Status ShardRouter::ValueQuery(const ValueInterval& query,
                               ValueQueryResult* out,
                               RouterQueryProfile* profile) const {
  *out = ValueQueryResult{};
  AdmissionSlot slot(this);
  queries_->Increment();
  const auto t0 = std::chrono::steady_clock::now();

  const size_t n = shards_.size();
  std::vector<ValueQueryResult> per_shard(n);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<uint32_t> targets;
  for (uint32_t k = 0; k < n; ++k) {
    if (shards_[k]->MayContain(query)) targets.push_back(k);
  }
  shards_touched_->Increment(targets.size());
  shards_skipped_->Increment(n - targets.size());

  Latch latch(targets.size());
  for (uint32_t k : targets) {
    shards_[k]->lane().SubmitTask([this, k, &query, &per_shard, &statuses,
                                   &latch] {
      const auto s0 = std::chrono::steady_clock::now();
      statuses[k] = shards_[k]->db().ValueQuery(query, &per_shard[k]);
      shards_[k]->RecordQuery(MsSince(s0));
      latch.CountDown();
    });
  }
  latch.Wait();

  // Deterministic gather: ascending shard id. Shard-local store order
  // equals the global linearization restricted to the shard, so this
  // concatenation is independent of the shard count.
  for (uint32_t k : targets) {
    if (!statuses[k].ok()) return statuses[k];
    out->region.Append(per_shard[k].region);
    MergeStats(per_shard[k].stats, &out->stats);
  }
  const double wall_ms = MsSince(t0);
  out->stats.wall_seconds = wall_ms / 1000.0;
  RecordSlo(query, wall_ms);
  if (profile != nullptr) {
    profile->shards_touched = static_cast<uint32_t>(targets.size());
    profile->shards_skipped = static_cast<uint32_t>(n - targets.size());
    profile->per_shard.resize(n);
    for (uint32_t k : targets) profile->per_shard[k] = per_shard[k].stats;
  }
  return Status::OK();
}

Status ShardRouter::SharedValueQueryStats(
    const std::vector<ValueInterval>& queries,
    std::vector<QueryStats>* out) const {
  out->assign(queries.size(), QueryStats{});
  if (queries.empty()) return Status::OK();
  AdmissionSlot slot(this);
  queries_->Increment();
  const auto t0 = std::chrono::steady_clock::now();

  const size_t n = shards_.size();
  // members[k] = indices of the queries shard k may contribute to.
  std::vector<std::vector<size_t>> members(n);
  size_t touched = 0;
  for (uint32_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < queries.size(); ++i) {
      if (shards_[k]->MayContain(queries[i])) members[k].push_back(i);
    }
    if (!members[k].empty()) ++touched;
  }
  shards_touched_->Increment(touched);
  shards_skipped_->Increment(n - touched);

  std::vector<std::vector<QueryStats>> per_shard(
      n, std::vector<QueryStats>(queries.size()));
  std::vector<Status> statuses(n, Status::OK());
  uint64_t fused_groups = 0;
  uint64_t split_members = 0;
  std::mutex group_mu;  // guards the two group counters across lanes

  Latch latch(touched);
  for (uint32_t k = 0; k < n; ++k) {
    if (members[k].empty()) continue;
    shards_[k]->lane().SubmitTask([this, k, &queries, &members, &per_shard,
                                   &statuses, &latch, &fused_groups,
                                   &split_members, &group_mu] {
      const auto s0 = std::chrono::steady_clock::now();
      Shard& shard = *shards_[k];
      const PlannerMode mode = shard.db().planner_mode();
      // Greedy fused-vs-split aggregation, the executor's admission
      // rule applied per shard: a member joins the current group only
      // when it overlaps the group's envelope AND the shard planner
      // prices the widened sweep no higher than running separately.
      std::vector<std::vector<size_t>> groups;
      for (size_t i : members[k]) {
        const ValueInterval& q = queries[i];
        bool placed = false;
        if (!groups.empty()) {
          // Envelope of the most recent group only (FIFO-like greedy,
          // matching the executor's head-group formation).
          std::vector<size_t>& g = groups.back();
          ValueInterval envelope = queries[g.front()];
          for (size_t j : g) envelope.Extend(queries[j]);
          if (envelope.Intersects(q) &&
              shard.db()
                  .planner()
                  .CostSharedScan(envelope, q, mode)
                  .share) {
            g.push_back(i);
            placed = true;
          }
        }
        if (!placed) groups.push_back({i});
      }
      uint64_t fused = 0;
      uint64_t split = 0;
      Status status = Status::OK();
      for (const std::vector<size_t>& g : groups) {
        if (g.size() == 1) {
          ++split;
          const Status s = shard.db().ValueQueryStats(
              queries[g.front()], &per_shard[k][g.front()]);
          if (!s.ok() && status.ok()) status = s;
          continue;
        }
        ++fused;
        std::vector<ValueInterval> batch;
        batch.reserve(g.size());
        for (size_t i : g) batch.push_back(queries[i]);
        std::vector<QueryStats> stats;
        const Status s = shard.db().SharedValueQueryStats(batch, &stats);
        if (!s.ok() && status.ok()) status = s;
        for (size_t j = 0; j < g.size() && j < stats.size(); ++j) {
          per_shard[k][g[j]] = stats[j];
        }
      }
      statuses[k] = status;
      shard.RecordQuery(MsSince(s0));
      {
        std::lock_guard<std::mutex> lock(group_mu);
        fused_groups += fused;
        split_members += split;
      }
      latch.CountDown();
    });
  }
  latch.Wait();

  groups_fused_->Increment(fused_groups);
  groups_split_->Increment(split_members);
  for (uint32_t k = 0; k < n; ++k) {
    if (members[k].empty()) continue;
    if (!statuses[k].ok()) return statuses[k];
    for (size_t i : members[k]) MergeStats(per_shard[k][i], &(*out)[i]);
  }
  const double wall_ms = MsSince(t0);
  for (size_t i = 0; i < queries.size(); ++i) {
    (*out)[i].wall_seconds = wall_ms / 1000.0;
    RecordSlo(queries[i], wall_ms);
  }
  return Status::OK();
}

StatusOr<double> ShardRouter::PointQuery(Point2 p) const {
  for (const auto& shard : shards_) {
    StatusOr<double> v = shard->db().PointQuery(p);
    if (v.ok()) return v;
    if (v.status().code() != StatusCode::kNotFound) return v.status();
  }
  return Status::NotFound("point outside every shard");
}

Status ShardRouter::UpdateCellValues(CellId global_id,
                                     const std::vector<double>& values) {
  if (global_id >= global_map_.size()) {
    return Status::InvalidArgument("cell id out of range");
  }
  const auto [shard_id, local_id] = global_map_[global_id];
  return shards_[shard_id]->db().UpdateCellValues(local_id, values);
}

Status ShardRouter::UpdateCellValuesBatch(
    const std::vector<FieldDatabase::CellUpdate>& updates) {
  // Partition by owning shard, preserving relative order within each
  // shard; validate every id before any shard commits.
  std::vector<std::vector<FieldDatabase::CellUpdate>> per_shard(
      shards_.size());
  for (const FieldDatabase::CellUpdate& u : updates) {
    if (u.id >= global_map_.size()) {
      return Status::InvalidArgument("cell id out of range");
    }
    const auto [shard_id, local_id] = global_map_[u.id];
    per_shard[shard_id].push_back(
        FieldDatabase::CellUpdate{local_id, u.values});
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (per_shard[k].empty()) continue;
    const Status s = shards_[k]->db().UpdateCellValuesBatch(per_shard[k]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardRouter::Close() {
  Status first = Status::OK();
  for (auto& shard : shards_) {
    const Status s = shard->Close();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

Status ShardRouter::SimulateCrashForTest() {
  Status first = Status::OK();
  for (auto& shard : shards_) {
    shard->lane().Drain();
    const Status s = shard->db().SimulateCrashForTest();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

ValueInterval ShardRouter::value_range() const {
  ValueInterval hull;
  for (const auto& shard : shards_) {
    hull = ValueInterval::Hull(hull, shard->db().value_range());
  }
  return hull;
}

void ShardRouter::set_planner_mode(PlannerMode mode) {
  for (auto& shard : shards_) shard->db().set_planner_mode(mode);
}

}  // namespace fielddb

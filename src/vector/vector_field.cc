#include "vector/vector_field.h"

namespace fielddb {

StatusOr<VectorGridField> VectorGridField::Create(
    uint32_t cols, uint32_t rows, const Rect2& domain,
    std::vector<double> samples_u, std::vector<double> samples_v) {
  StatusOr<GridField> u =
      GridField::Create(cols, rows, domain, std::move(samples_u));
  if (!u.ok()) return u.status();
  StatusOr<GridField> v =
      GridField::Create(cols, rows, domain, std::move(samples_v));
  if (!v.ok()) return v.status();
  return VectorGridField(std::move(u).value(), std::move(v).value());
}

Box<2> VectorGridField::CellValueBox(CellId id) const {
  const ValueInterval iu = u_.GetCell(id).Interval();
  const ValueInterval iv = v_.GetCell(id).Interval();
  Box<2> b;
  b.lo = {iu.min, iv.min};
  b.hi = {iu.max, iv.max};
  return b;
}

Box<2> VectorGridField::ValueRangeBox() const {
  const ValueInterval iu = u_.ValueRange();
  const ValueInterval iv = v_.ValueRange();
  Box<2> b;
  b.lo = {iu.min, iv.min};
  b.hi = {iu.max, iv.max};
  return b;
}

StatusOr<std::pair<double, double>> VectorGridField::ValueAt(
    Point2 p) const {
  StatusOr<double> wu = u_.ValueAt(p);
  if (!wu.ok()) return wu.status();
  StatusOr<double> wv = v_.ValueAt(p);
  if (!wv.ok()) return wv.status();
  return std::make_pair(*wu, *wv);
}

}  // namespace fielddb

#ifndef FIELDDB_VECTOR_VECTOR_RECORD_H_
#define FIELDDB_VECTOR_VECTOR_RECORD_H_

#include "field/cell.h"
#include "rtree/box.h"
#include "vector/vector_field.h"

namespace fielddb {

/// Self-contained record of one vector-field cell: shared geometry plus
/// per-vertex samples of both components. The unit stored by the vector
/// cell store.
struct VectorCellRecord {
  uint32_t num_vertices = 0;
  CellId id = kInvalidCellId;
  double x[4] = {0, 0, 0, 0};
  double y[4] = {0, 0, 0, 0};
  double u[4] = {0, 0, 0, 0};
  double v[4] = {0, 0, 0, 0};

  static VectorCellRecord FromField(const VectorGridField& field,
                                    CellId id) {
    const CellRecord cu = field.ComponentCell(0, id);
    const CellRecord cv = field.ComponentCell(1, id);
    VectorCellRecord r;
    r.num_vertices = cu.num_vertices;
    r.id = id;
    for (uint32_t i = 0; i < cu.num_vertices; ++i) {
      r.x[i] = cu.x[i];
      r.y[i] = cu.y[i];
      r.u[i] = cu.w[i];
      r.v[i] = cv.w[i];
    }
    return r;
  }

  Point2 Vertex(int i) const { return {x[i], y[i]}; }

  /// Scalar record of one component (0 = u, 1 = v).
  CellRecord Component(int c) const {
    CellRecord r;
    r.num_vertices = num_vertices;
    r.id = id;
    for (uint32_t i = 0; i < num_vertices; ++i) {
      r.x[i] = x[i];
      r.y[i] = y[i];
      r.w[i] = c == 0 ? u[i] : v[i];
    }
    return r;
  }

  /// 2-D value box: per-component vertex hulls.
  Box<2> ValueBox() const {
    Box<2> b = Box<2>::Empty();
    for (uint32_t i = 0; i < num_vertices; ++i) {
      b.lo[0] = std::min(b.lo[0], u[i]);
      b.hi[0] = std::max(b.hi[0], u[i]);
      b.lo[1] = std::min(b.lo[1], v[i]);
      b.hi[1] = std::max(b.hi[1], v[i]);
    }
    return b;
  }

  Rect2 Bounds() const {
    Rect2 r = Rect2::Empty();
    for (uint32_t i = 0; i < num_vertices; ++i) r.Extend(Vertex(i));
    return r;
  }

  Point2 Centroid() const {
    Point2 c{0, 0};
    for (uint32_t i = 0; i < num_vertices; ++i) {
      c.x += x[i];
      c.y += y[i];
    }
    const double n = num_vertices > 0 ? num_vertices : 1;
    return {c.x / n, c.y / n};
  }
};

static_assert(sizeof(VectorCellRecord) == 136,
              "VectorCellRecord layout is part of the store page format");

}  // namespace fielddb

#endif  // FIELDDB_VECTOR_VECTOR_RECORD_H_

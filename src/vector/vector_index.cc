#include "vector/vector_index.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/ext_sort.h"
#include "curve/hilbert.h"

namespace fielddb {

namespace {

constexpr const char* kVectorMagic = "fielddb-vector-meta-v1";

struct VectorMetaData {
  uint32_t page_size = 0;
  uint32_t epoch = 0;
  int method = 0;
  uint64_t num_cells = 0;
  PageId store_first_page = 0;
  bool has_tree = false;
  RStarMeta tree;
  std::vector<VectorSubfield> subfields;
  uint64_t declared_subfields = 0;
};

Status WriteVectorMeta(const std::string& path, const VectorMetaData& meta) {
  return WriteCatalogFile(path, [&](std::FILE* f) {
    std::fprintf(f, "%s\n", kVectorMagic);
    std::fprintf(f, "page_size %u\n", meta.page_size);
    std::fprintf(f, "epoch %u\n", meta.epoch);
    std::fprintf(f, "method %d\n", meta.method);
    std::fprintf(f, "num_cells %" PRIu64 "\n", meta.num_cells);
    std::fprintf(f, "store_first_page %" PRIu64 "\n",
                 meta.store_first_page);
    if (meta.has_tree) {
      std::fprintf(f, "tree %" PRIu64 " %u %" PRIu64 " %" PRIu64 "\n",
                   meta.tree.root, meta.tree.height, meta.tree.size,
                   meta.tree.num_nodes);
    }
    std::fprintf(f, "subfields %zu\n", meta.subfields.size());
    for (const VectorSubfield& sf : meta.subfields) {
      std::fprintf(f,
                   "sfv %" PRIu64 " %" PRIu64
                   " %.17g %.17g %.17g %.17g %.17g\n",
                   sf.start, sf.end, sf.box.lo[0], sf.box.lo[1],
                   sf.box.hi[0], sf.box.hi[1], sf.sum_box_sizes);
    }
    return true;
  });
}

Status ValidateVectorMeta(const VectorMetaData& meta,
                          const std::string& path) {
  const auto bad = [&](const char* key) {
    return Status::Corruption("catalog " + path + ": invalid value for '" +
                              key + "'");
  };
  if (meta.page_size == 0 || meta.page_size > (1u << 26)) {
    return bad("page_size");
  }
  if (meta.method < 0 ||
      meta.method > static_cast<int>(VectorIndexMethod::kIHilbert)) {
    return bad("method");
  }
  if (meta.declared_subfields != meta.subfields.size()) {
    return bad("subfields");
  }
  for (const VectorSubfield& sf : meta.subfields) {
    if (sf.start > sf.end || sf.end > meta.num_cells) return bad("sfv");
    for (int d = 0; d < 2; ++d) {
      if (!std::isfinite(sf.box.lo[d]) || !std::isfinite(sf.box.hi[d]) ||
          sf.box.lo[d] > sf.box.hi[d]) {
        return bad("sfv");
      }
    }
    if (!std::isfinite(sf.sum_box_sizes)) return bad("sfv");
  }
  return Status::OK();
}

StatusOr<VectorMetaData> ReadVectorMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot read " + path);
  VectorMetaData meta;
  char magic[64] = {};
  if (std::fscanf(f, "%63s", magic) != 1 ||
      std::string(magic) != kVectorMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  char key[64];
  bool ok = true;
  while (ok && std::fscanf(f, "%63s", key) == 1) {
    const std::string k = key;
    if (k == "page_size") {
      ok = std::fscanf(f, "%u", &meta.page_size) == 1;
    } else if (k == "epoch") {
      ok = std::fscanf(f, "%u", &meta.epoch) == 1;
    } else if (k == "method") {
      ok = std::fscanf(f, "%d", &meta.method) == 1;
    } else if (k == "num_cells") {
      ok = std::fscanf(f, "%" SCNu64, &meta.num_cells) == 1;
    } else if (k == "store_first_page") {
      ok = std::fscanf(f, "%" SCNu64, &meta.store_first_page) == 1;
    } else if (k == "tree") {
      ok = std::fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64,
                       &meta.tree.root, &meta.tree.height, &meta.tree.size,
                       &meta.tree.num_nodes) == 4;
      meta.has_tree = true;
    } else if (k == "subfields") {
      ok = std::fscanf(f, "%" SCNu64, &meta.declared_subfields) == 1;
      if (ok && meta.declared_subfields <= (uint64_t{1} << 24)) {
        meta.subfields.reserve(meta.declared_subfields);
      }
    } else if (k == "sfv") {
      VectorSubfield sf;
      ok = std::fscanf(f, "%" SCNu64 " %" SCNu64 " %lg %lg %lg %lg %lg",
                       &sf.start, &sf.end, &sf.box.lo[0], &sf.box.lo[1],
                       &sf.box.hi[0], &sf.box.hi[1],
                       &sf.sum_box_sizes) == 7;
      meta.subfields.push_back(sf);
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed catalog " + path);
  FIELDDB_RETURN_IF_ERROR(ValidateVectorMeta(meta, path));
  return meta;
}

ValueInterval BoxUInterval(const Box<2>& b) {
  return ValueInterval{b.lo[0], b.hi[0]};
}
ValueInterval BoxVInterval(const Box<2>& b) {
  return ValueInterval{b.lo[1], b.hi[1]};
}

}  // namespace

VectorSubfieldCostModel::VectorSubfieldCostModel(
    const Box<2>& value_range, const VectorCostConfig& config)
    : config_(config) {
  range_u_ = value_range.IsEmpty()
                 ? 1.0
                 : value_range.hi[0] - value_range.lo[0] + 1.0;
  range_v_ = value_range.IsEmpty()
                 ? 1.0
                 : value_range.hi[1] - value_range.lo[1] + 1.0;
  if (range_u_ <= 0) range_u_ = 1.0;
  if (range_v_ <= 0) range_v_ = 1.0;
}

double VectorSubfieldCostModel::Cost(const Box<2>& box,
                                     double sum_box_sizes) const {
  // (Lu + q̄·Ru)(Lv + q̄·Rv) / SI — the scale-free form of
  // (Lu' + q̄)(Lv' + q̄) / SI' with normalized extents.
  const double q = config_.avg_query_fraction;
  const double pu = (box.hi[0] - box.lo[0] + 1.0) + q * range_u_;
  const double pv = (box.hi[1] - box.lo[1] + 1.0) + q * range_v_;
  return pu * pv / sum_box_sizes;
}

bool VectorSubfieldCostModel::ShouldAppend(const VectorSubfield& current,
                                           const Box<2>& cell_box) const {
  const double before = Cost(current.box, current.sum_box_sizes);
  Box<2> merged = current.box;
  merged.Extend(cell_box);
  const double after =
      Cost(merged, current.sum_box_sizes + BoxPaperSize(cell_box));
  return before > after;
}

VectorSubfieldStreamBuilder::VectorSubfieldStreamBuilder(
    const Box<2>& value_range, const VectorCostConfig& config)
    : model_(value_range, config) {}

void VectorSubfieldStreamBuilder::Add(const Box<2>& cell_box) {
  const double size = (cell_box.hi[0] - cell_box.lo[0] + 1.0) *
                      (cell_box.hi[1] - cell_box.lo[1] + 1.0);
  const uint64_t pos = num_cells_++;
  if (pos == 0) {
    current_.start = 0;
    current_.end = 1;
    current_.box = cell_box;
    current_.sum_box_sizes = size;
    return;
  }
  if (model_.ShouldAppend(current_, cell_box)) {
    current_.end = pos + 1;
    current_.box.Extend(cell_box);
    current_.sum_box_sizes += size;
  } else {
    subfields_.push_back(current_);
    current_.start = pos;
    current_.end = pos + 1;
    current_.box = cell_box;
    current_.sum_box_sizes = size;
  }
}

std::vector<VectorSubfield> VectorSubfieldStreamBuilder::Finish() {
  if (num_cells_ > 0) subfields_.push_back(current_);
  return std::move(subfields_);
}

std::vector<VectorSubfield> BuildVectorSubfields(
    const std::vector<Box<2>>& cell_boxes, const Box<2>& value_range,
    const VectorCostConfig& config) {
  VectorSubfieldStreamBuilder builder(value_range, config);
  for (const Box<2>& box : cell_boxes) builder.Add(box);
  return builder.Finish();
}

const char* VectorIndexMethodName(VectorIndexMethod method) {
  switch (method) {
    case VectorIndexMethod::kLinearScan:
      return "V-LinearScan";
    case VectorIndexMethod::kIHilbert:
      return "V-I-Hilbert";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<VectorFieldDatabase>> VectorFieldDatabase::Build(
    const VectorGridField& field, const Options& options) {
  auto db = std::unique_ptr<VectorFieldDatabase>(new VectorFieldDatabase());
  db->method_ = options.method;
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  FieldEngine::BuildConfig config;
  config.page_size = options.page_size;
  config.pool_pages = options.pool_pages;
  config.page_file_factory = options.page_file_factory;
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForBuild(config));
  BufferPool* const pool = db->engine_.pool();

  // Hilbert-order the cells (also for LinearScan — the scan is
  // order-insensitive and sharing the layout isolates the index effect).
  // One sorter serves both the in-RAM and the bounded-memory builds;
  // its (key, insertion-seq) tie-break equals the (key, id) order, so
  // both paths emit cells identically.
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(options.curve, options.curve_order);
  const CellId n = field.NumCells();
  const Rect2 domain = field.Domain();
  ExternalKeyRecordSorter<CellId> sorter(options.build_memory_budget_bytes);
  for (CellId id = 0; id < n; ++id) {
    const Point2 c = field.ComponentCell(0, id).Centroid();
    FIELDDB_RETURN_IF_ERROR(sorter.Add(
        curve->EncodeUnit((c.x - domain.lo.x) / domain.Width(),
                          (c.y - domain.lo.y) / domain.Height()),
        id));
  }

  db->pos_of_.assign(n, 0);
  db->zones_.Reserve(n);
  RecordStoreAppender<VectorCellRecord> appender(pool);
  VectorSubfieldStreamBuilder costing(field.ValueRangeBox(), options.cost);
  FIELDDB_RETURN_IF_ERROR(
      sorter.Merge([&](uint64_t, const CellId& id) -> Status {
        const VectorCellRecord record =
            VectorCellRecord::FromField(field, id);
        db->pos_of_[id] = appender.size();
        FIELDDB_RETURN_IF_ERROR(appender.Append(record));
        const Box<2> box = record.ValueBox();
        db->zones_.Append(BoxUInterval(box), BoxVInterval(box));
        costing.Add(box);
        return Status::OK();
      }));
  StatusOr<RecordStore<VectorCellRecord>> store = appender.Finish();
  if (!store.ok()) return store.status();
  db->store_ = std::make_unique<RecordStore<VectorCellRecord>>(
      std::move(store).value());
  db->ext_spill_runs_ = sorter.spill_runs();
  db->ext_peak_buffered_bytes_ = sorter.peak_buffered_bytes();

  if (options.method == VectorIndexMethod::kIHilbert) {
    db->subfields_ = costing.Finish();
    std::vector<RTreeEntry<2>> entries(db->subfields_.size());
    for (size_t i = 0; i < db->subfields_.size(); ++i) {
      entries[i].box = db->subfields_[i].box;
      entries[i].a = db->subfields_[i].start;
      entries[i].b = db->subfields_[i].end;
    }
    StatusOr<RStarTree<2>> tree =
        RStarTree<2>::BulkLoad(pool, entries, options.rstar);
    if (!tree.ok()) return tree.status();
    db->tree_ = std::make_unique<RStarTree<2>>(std::move(tree).value());
  }

  if (options.wal_mode != WalMode::kOff) {
    FIELDDB_RETURN_IF_ERROR(
        db->engine_.ArmWal(options.wal_path, options.wal_mode));
  }
  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    if (options.wal_mode != WalMode::kOff) {
      db->engine_.LogEvent(EventLog::Event("wal_mode_transition")
                               .Add("from", WalModeName(WalMode::kOff))
                               .Add("to", WalModeName(options.wal_mode))
                               .Add("at", "build"));
    }
  }
  pool->ResetStats();
  return db;
}

Status VectorFieldDatabase::Save(const std::string& prefix) {
  return SaveImpl(prefix, SnapshotCrashPoint::kNone);
}

Status VectorFieldDatabase::SaveImpl(const std::string& prefix,
                                     SnapshotCrashPoint crash_point) {
  return engine_.SaveSnapshot(
      prefix, crash_point,
      [&](const std::string& meta_tmp_path, uint32_t new_epoch) -> Status {
        VectorMetaData meta;
        meta.page_size = engine_.file()->page_size();
        meta.epoch = new_epoch;
        meta.method = static_cast<int>(method_);
        meta.num_cells = store_->size();
        meta.store_first_page = store_->first_page();
        if (tree_ != nullptr) {
          meta.has_tree = true;
          meta.tree = tree_->meta();
        }
        meta.subfields = subfields_;
        return WriteVectorMeta(meta_tmp_path, meta);
      });
}

StatusOr<std::unique_ptr<VectorFieldDatabase>> VectorFieldDatabase::Open(
    const std::string& prefix) {
  return Open(prefix, OpenOptions{});
}

StatusOr<std::unique_ptr<VectorFieldDatabase>> VectorFieldDatabase::Open(
    const std::string& prefix, const OpenOptions& options) {
  TryCompleteInterruptedSave(
      prefix, [](const std::string& path) -> StatusOr<uint32_t> {
        StatusOr<VectorMetaData> m = ReadVectorMeta(path);
        if (!m.ok()) return m.status();
        return m->epoch;
      });

  StatusOr<VectorMetaData> meta = ReadVectorMeta(prefix + ".meta");
  if (!meta.ok()) return meta.status();

  auto db = std::unique_ptr<VectorFieldDatabase>(new VectorFieldDatabase());
  db->method_ = static_cast<VectorIndexMethod>(meta->method);
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForOpen(
      prefix, meta->page_size, meta->epoch, options.pool_pages));
  BufferPool* const pool = db->engine_.pool();

  const uint64_t num_pages = db->engine_.file()->NumPages();
  if (meta->num_cells > 0 && meta->store_first_page >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'store_first_page'");
  }
  if (meta->has_tree && meta->tree.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'tree'");
  }
  if (db->method_ == VectorIndexMethod::kIHilbert && !meta->has_tree) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: missing tree meta");
  }

  StatusOr<RecordStore<VectorCellRecord>> store =
      RecordStore<VectorCellRecord>::Attach(pool, meta->store_first_page,
                                            meta->num_cells);
  if (!store.ok()) return store.status();
  db->store_ = std::make_unique<RecordStore<VectorCellRecord>>(
      std::move(store).value());
  db->subfields_ = std::move(meta->subfields);
  if (meta->has_tree) {
    db->tree_ = std::make_unique<RStarTree<2>>(
        RStarTree<2>::Attach(pool, meta->tree));
  }

  // One store pass rebuilds both in-RAM sidecars: the cell-id ->
  // position map and the 2-D zone map the planner probes.
  const uint64_t n = meta->num_cells;
  db->pos_of_.assign(n, ~uint64_t{0});
  db->zones_.Reserve(n);
  FIELDDB_RETURN_IF_ERROR(db->store_->Scan(
      0, n, [&](uint64_t pos, const VectorCellRecord& rec) {
        if (rec.id < n) db->pos_of_[rec.id] = pos;
        const Box<2> box = rec.ValueBox();
        db->zones_.Append(BoxUInterval(box), BoxVInterval(box));
        return true;
      }));
  for (const uint64_t pos : db->pos_of_) {
    if (pos == ~uint64_t{0}) {
      return Status::Corruption("vector store is missing cell ids");
    }
  }

  // Recovery: a frame carries u followed by v; logical redo through the
  // same apply path updates took maintains subfield boxes, tree entries
  // and the zone map.
  EngineRecoveryReport report;
  VectorFieldDatabase* const raw = db.get();
  FIELDDB_RETURN_IF_ERROR(db->engine_.RecoverFromWal(
      prefix, options.wal_mode,
      [raw](const WalFrame& frame) -> Status {
        if (frame.values.empty() || frame.values.size() % 2 != 0) {
          return Status::Corruption(
              "vector WAL frame must carry an even sample count");
        }
        const size_t nv = frame.values.size() / 2;
        const std::vector<double> u(frame.values.begin(),
                                    frame.values.begin() + nv);
        const std::vector<double> v(frame.values.begin() + nv,
                                    frame.values.end());
        return raw->ApplyCellValues(frame.cell_id, u, v);
      },
      [raw, &prefix]() {
        return raw->SaveImpl(prefix, SnapshotCrashPoint::kNone);
      },
      &report));

  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    db->engine_.LogRecoveryEvent(report, options.wal_mode);
  }

  pool->ResetStats();
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return db;
}

Status VectorFieldDatabase::UpdateCellValues(CellId id,
                                             const std::vector<double>& u,
                                             const std::vector<double>& v) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  VectorCellRecord cell;
  FIELDDB_RETURN_IF_ERROR(store_->Get(pos_of_[id], &cell));
  if (u.size() != cell.num_vertices || v.size() != cell.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(cell.num_vertices) +
        " values per component, got " + std::to_string(u.size()) + "/" +
        std::to_string(v.size()));
  }
  // Validated above, so only appliable updates reach the log. The frame
  // carries u followed by v.
  if (engine_.wal() != nullptr) {
    std::vector<double> uv;
    uv.reserve(u.size() + v.size());
    uv.insert(uv.end(), u.begin(), u.end());
    uv.insert(uv.end(), v.begin(), v.end());
    FIELDDB_RETURN_IF_ERROR(engine_.LogUpdate(id, uv));
  }
  return ApplyCellValues(id, u, v);
}

Status VectorFieldDatabase::ApplyCellValues(CellId id,
                                            const std::vector<double>& u,
                                            const std::vector<double>& v) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  const uint64_t pos = pos_of_[id];
  VectorCellRecord cell;
  FIELDDB_RETURN_IF_ERROR(store_->Get(pos, &cell));
  if (u.size() != cell.num_vertices || v.size() != cell.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(cell.num_vertices) +
        " values per component, got " + std::to_string(u.size()) + "/" +
        std::to_string(v.size()));
  }
  for (uint32_t i = 0; i < cell.num_vertices; ++i) {
    cell.u[i] = u[i];
    cell.v[i] = v[i];
  }
  FIELDDB_RETURN_IF_ERROR(store_->Put(pos, cell));
  const Box<2> new_box = cell.ValueBox();
  zones_.Set(pos, BoxUInterval(new_box), BoxVInterval(new_box));
  if (tree_ == nullptr) return Status::OK();

  // Refresh the containing subfield's value-box hull (the no-false-
  // negative invariant: every member cell's box stays covered).
  const auto it = std::upper_bound(
      subfields_.begin(), subfields_.end(), pos,
      [](uint64_t p, const VectorSubfield& sf) { return p < sf.end; });
  if (it == subfields_.end() || pos < it->start) {
    return Status::Internal("no subfield covers updated cell position");
  }
  VectorSubfield& sf = *it;
  Box<2> hull = Box<2>::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(store_->Scan(
      sf.start, sf.end, [&](uint64_t, const VectorCellRecord& member) {
        const Box<2> b = member.ValueBox();
        hull.Extend(b);
        sum_sizes += (b.hi[0] - b.lo[0] + 1.0) * (b.hi[1] - b.lo[1] + 1.0);
        return true;
      }));
  const bool hull_changed = hull.lo[0] != sf.box.lo[0] ||
                            hull.hi[0] != sf.box.hi[0] ||
                            hull.lo[1] != sf.box.lo[1] ||
                            hull.hi[1] != sf.box.hi[1];
  if (hull_changed) {
    FIELDDB_RETURN_IF_ERROR(tree_->Delete(sf.box, sf.start, sf.end));
    FIELDDB_RETURN_IF_ERROR(tree_->Insert(hull, sf.start, sf.end));
    sf.box = hull;
  }
  sf.sum_box_sizes = sum_sizes;
  return Status::OK();
}

PhysicalPlan VectorFieldDatabase::ChoosePlan(
    const VectorBandQuery& query) const {
  std::vector<PosRange> runs;
  zones_.FilterRanges(query.u, query.v, &runs);
  StoreShape shape;
  shape.num_cells = store_->size();
  shape.cells_per_page = store_->records_per_page();
  shape.store_pages = store_->num_pages();
  const ExtStorePlanner planner(shape,
                                tree_ != nullptr ? tree_->height() : 0);
  return planner.Choose(runs, planner_mode_.load(std::memory_order_relaxed),
                        tree_ != nullptr);
}

PhysicalPlan VectorFieldDatabase::PlanBandQuery(
    const VectorBandQuery& query) const {
  return ChoosePlan(query);
}

void VectorFieldDatabase::MaybeLogSlowQuery(const VectorBandQuery& query,
                                            const QueryStats& stats,
                                            const PhysicalPlan& plan) const {
  if (engine_.event_log() == nullptr) return;
  const double wall_ms = stats.wall_seconds * 1000.0;
  if (wall_ms < engine_.slow_query_threshold_ms()) return;
  const double observed_disk_ms = DiskModel{}.EstimateMs(
      stats.io.sequential_reads, stats.io.random_reads());
  engine_.LogEvent(EventLog::Event("slow_query")
                       .Add("field_type", "vector")
                       .Add("wall_ms", wall_ms)
                       .Add("threshold_ms", engine_.slow_query_threshold_ms())
                       .Add("query_u_min", query.u.min)
                       .Add("query_u_max", query.u.max)
                       .Add("query_v_min", query.v.min)
                       .Add("query_v_max", query.v.max)
                       .Add("plan", PlanKindName(plan.kind))
                       .Add("reason", plan.reason)
                       .Add("predicted_cost_ms", plan.predicted_cost_ms)
                       .Add("observed_disk_ms", observed_disk_ms)
                       .Add("candidate_cells", stats.candidate_cells)
                       .Add("answer_cells", stats.answer_cells));
}

Status VectorFieldDatabase::BandQuery(const VectorBandQuery& query,
                                      VectorQueryResult* out) {
  if (query.u.IsEmpty() || query.v.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  out->region.pieces.clear();
  out->stats = QueryStats{};
  out->plan = ChoosePlan(query);
  const IoStats io_before = engine_.pool()->stats();
  const auto t0 = std::chrono::steady_clock::now();

  Status inner = Status::OK();
  const auto visit_cell = [&](uint64_t, const VectorCellRecord& cell) {
    StatusOr<size_t> pieces =
        VectorCellIsoband(cell, query, &out->region);
    if (!pieces.ok()) {
      inner = pieces.status();
      return false;
    }
    if (*pieces > 0) {
      ++out->stats.answer_cells;
      out->stats.region_pieces += *pieces;
    }
    return true;
  };

  if (out->plan.kind == PlanKind::kFusedScan) {
    out->stats.candidate_cells = store_->size();
    FIELDDB_RETURN_IF_ERROR(store_->Scan(0, store_->size(), visit_cell));
    FIELDDB_RETURN_IF_ERROR(inner);
  } else {
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    FIELDDB_RETURN_IF_ERROR(
        tree_->Search(query.AsBox(), [&](const RTreeEntry<2>& e) {
          ranges.emplace_back(e.a, e.b);
          return true;
        }));
    std::sort(ranges.begin(), ranges.end());
    uint64_t covered_to = 0;
    for (const auto& [start, end] : ranges) {
      const uint64_t begin = std::max(start, covered_to);
      if (begin < end) {
        out->stats.candidate_cells += end - begin;
        FIELDDB_RETURN_IF_ERROR(store_->Scan(begin, end, visit_cell));
        FIELDDB_RETURN_IF_ERROR(inner);
      }
      covered_to = std::max(covered_to, end);
    }
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = engine_.pool()->stats() - io_before;
  MaybeLogSlowQuery(query, out->stats, out->plan);
  return Status::OK();
}

StatusOr<WorkloadStats> VectorFieldDatabase::RunWorkload(
    const std::vector<VectorBandQuery>& queries) {
  WorkloadStats ws;
  if (queries.empty()) return ws;
  QueryStats total;
  std::vector<double> wall_ms;
  wall_ms.reserve(queries.size());
  VectorQueryResult result;
  for (const VectorBandQuery& q : queries) {
    FIELDDB_RETURN_IF_ERROR(engine_.pool()->Clear());
    FIELDDB_RETURN_IF_ERROR(BandQuery(q, &result));
    total.Accumulate(result.stats);
    wall_ms.push_back(result.stats.wall_seconds * 1000.0);
  }
  FinalizeWorkloadStats(total, &wall_ms, &ws);
  return ws;
}

}  // namespace fielddb

#include "vector/vector_index.h"

#include <algorithm>
#include <chrono>

#include "curve/hilbert.h"

namespace fielddb {

VectorSubfieldCostModel::VectorSubfieldCostModel(
    const Box<2>& value_range, const VectorCostConfig& config)
    : config_(config) {
  range_u_ = value_range.IsEmpty()
                 ? 1.0
                 : value_range.hi[0] - value_range.lo[0] + 1.0;
  range_v_ = value_range.IsEmpty()
                 ? 1.0
                 : value_range.hi[1] - value_range.lo[1] + 1.0;
  if (range_u_ <= 0) range_u_ = 1.0;
  if (range_v_ <= 0) range_v_ = 1.0;
}

double VectorSubfieldCostModel::Cost(const Box<2>& box,
                                     double sum_box_sizes) const {
  // (Lu + q̄·Ru)(Lv + q̄·Rv) / SI — the scale-free form of
  // (Lu' + q̄)(Lv' + q̄) / SI' with normalized extents.
  const double q = config_.avg_query_fraction;
  const double pu = (box.hi[0] - box.lo[0] + 1.0) + q * range_u_;
  const double pv = (box.hi[1] - box.lo[1] + 1.0) + q * range_v_;
  return pu * pv / sum_box_sizes;
}

bool VectorSubfieldCostModel::ShouldAppend(const VectorSubfield& current,
                                           const Box<2>& cell_box) const {
  const double before = Cost(current.box, current.sum_box_sizes);
  Box<2> merged = current.box;
  merged.Extend(cell_box);
  const double after =
      Cost(merged, current.sum_box_sizes + BoxPaperSize(cell_box));
  return before > after;
}

std::vector<VectorSubfield> BuildVectorSubfields(
    const std::vector<Box<2>>& cell_boxes, const Box<2>& value_range,
    const VectorCostConfig& config) {
  std::vector<VectorSubfield> subfields;
  if (cell_boxes.empty()) return subfields;
  const VectorSubfieldCostModel model(value_range, config);

  const auto box_size = [](const Box<2>& b) {
    return (b.hi[0] - b.lo[0] + 1.0) * (b.hi[1] - b.lo[1] + 1.0);
  };

  VectorSubfield current;
  current.start = 0;
  current.end = 1;
  current.box = cell_boxes[0];
  current.sum_box_sizes = box_size(cell_boxes[0]);
  for (uint64_t pos = 1; pos < cell_boxes.size(); ++pos) {
    if (model.ShouldAppend(current, cell_boxes[pos])) {
      current.end = pos + 1;
      current.box.Extend(cell_boxes[pos]);
      current.sum_box_sizes += box_size(cell_boxes[pos]);
    } else {
      subfields.push_back(current);
      current.start = pos;
      current.end = pos + 1;
      current.box = cell_boxes[pos];
      current.sum_box_sizes = box_size(cell_boxes[pos]);
    }
  }
  subfields.push_back(current);
  return subfields;
}

const char* VectorIndexMethodName(VectorIndexMethod method) {
  switch (method) {
    case VectorIndexMethod::kLinearScan:
      return "V-LinearScan";
    case VectorIndexMethod::kIHilbert:
      return "V-I-Hilbert";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<VectorFieldDatabase>> VectorFieldDatabase::Build(
    const VectorGridField& field, const Options& options) {
  auto db = std::unique_ptr<VectorFieldDatabase>(new VectorFieldDatabase());
  db->method_ = options.method;
  db->file_ = options.page_file_factory
                  ? options.page_file_factory(options.page_size)
                  : std::make_unique<MemPageFile>(options.page_size);
  db->pool_ =
      std::make_unique<BufferPool>(db->file_.get(), options.pool_pages);

  // Hilbert-order the cells (also for LinearScan — the scan is
  // order-insensitive and sharing the layout isolates the index effect).
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(options.curve, options.curve_order);
  const CellId n = field.NumCells();
  const Rect2 domain = field.Domain();
  std::vector<std::pair<uint64_t, CellId>> keyed(n);
  for (CellId id = 0; id < n; ++id) {
    const Point2 c = field.ComponentCell(0, id).Centroid();
    keyed[id] = {curve->EncodeUnit((c.x - domain.lo.x) / domain.Width(),
                                   (c.y - domain.lo.y) / domain.Height()),
                 id};
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<VectorCellRecord> records(n);
  std::vector<Box<2>> boxes(n);
  db->pos_of_.assign(n, 0);
  for (CellId pos = 0; pos < n; ++pos) {
    records[pos] = VectorCellRecord::FromField(field, keyed[pos].second);
    boxes[pos] = records[pos].ValueBox();
    db->pos_of_[keyed[pos].second] = pos;
  }
  StatusOr<RecordStore<VectorCellRecord>> store =
      RecordStore<VectorCellRecord>::Build(db->pool_.get(), records);
  if (!store.ok()) return store.status();
  db->store_ = std::make_unique<RecordStore<VectorCellRecord>>(
      std::move(store).value());

  if (options.method == VectorIndexMethod::kIHilbert) {
    db->subfields_ =
        BuildVectorSubfields(boxes, field.ValueRangeBox(), options.cost);
    std::vector<RTreeEntry<2>> entries(db->subfields_.size());
    for (size_t i = 0; i < db->subfields_.size(); ++i) {
      entries[i].box = db->subfields_[i].box;
      entries[i].a = db->subfields_[i].start;
      entries[i].b = db->subfields_[i].end;
    }
    StatusOr<RStarTree<2>> tree =
        RStarTree<2>::BulkLoad(db->pool_.get(), entries, options.rstar);
    if (!tree.ok()) return tree.status();
    db->tree_ = std::make_unique<RStarTree<2>>(std::move(tree).value());
  }
  db->pool_->ResetStats();
  return db;
}

Status VectorFieldDatabase::UpdateCellValues(CellId id,
                                             const std::vector<double>& u,
                                             const std::vector<double>& v) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  const uint64_t pos = pos_of_[id];
  VectorCellRecord cell;
  FIELDDB_RETURN_IF_ERROR(store_->Get(pos, &cell));
  if (u.size() != cell.num_vertices || v.size() != cell.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(cell.num_vertices) +
        " values per component, got " + std::to_string(u.size()) + "/" +
        std::to_string(v.size()));
  }
  for (uint32_t i = 0; i < cell.num_vertices; ++i) {
    cell.u[i] = u[i];
    cell.v[i] = v[i];
  }
  FIELDDB_RETURN_IF_ERROR(store_->Put(pos, cell));
  if (tree_ == nullptr) return Status::OK();

  // Refresh the containing subfield's value-box hull (the no-false-
  // negative invariant: every member cell's box stays covered).
  const auto it = std::upper_bound(
      subfields_.begin(), subfields_.end(), pos,
      [](uint64_t p, const VectorSubfield& sf) { return p < sf.end; });
  if (it == subfields_.end() || pos < it->start) {
    return Status::Internal("no subfield covers updated cell position");
  }
  VectorSubfield& sf = *it;
  Box<2> hull = Box<2>::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(store_->Scan(
      sf.start, sf.end, [&](uint64_t, const VectorCellRecord& member) {
        const Box<2> b = member.ValueBox();
        hull.Extend(b);
        sum_sizes += (b.hi[0] - b.lo[0] + 1.0) * (b.hi[1] - b.lo[1] + 1.0);
        return true;
      }));
  const bool hull_changed = hull.lo[0] != sf.box.lo[0] ||
                            hull.hi[0] != sf.box.hi[0] ||
                            hull.lo[1] != sf.box.lo[1] ||
                            hull.hi[1] != sf.box.hi[1];
  if (hull_changed) {
    FIELDDB_RETURN_IF_ERROR(tree_->Delete(sf.box, sf.start, sf.end));
    FIELDDB_RETURN_IF_ERROR(tree_->Insert(hull, sf.start, sf.end));
    sf.box = hull;
  }
  sf.sum_box_sizes = sum_sizes;
  return Status::OK();
}

Status VectorFieldDatabase::BandQuery(const VectorBandQuery& query,
                                      VectorQueryResult* out) {
  if (query.u.IsEmpty() || query.v.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  out->region.pieces.clear();
  out->stats = QueryStats{};
  const IoStats io_before = pool_->stats();
  const auto t0 = std::chrono::steady_clock::now();

  Status inner = Status::OK();
  const auto visit_cell = [&](uint64_t, const VectorCellRecord& cell) {
    StatusOr<size_t> pieces =
        VectorCellIsoband(cell, query, &out->region);
    if (!pieces.ok()) {
      inner = pieces.status();
      return false;
    }
    if (*pieces > 0) {
      ++out->stats.answer_cells;
      out->stats.region_pieces += *pieces;
    }
    return true;
  };

  if (tree_ == nullptr) {
    out->stats.candidate_cells = store_->size();
    FIELDDB_RETURN_IF_ERROR(store_->Scan(0, store_->size(), visit_cell));
    FIELDDB_RETURN_IF_ERROR(inner);
  } else {
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    FIELDDB_RETURN_IF_ERROR(
        tree_->Search(query.AsBox(), [&](const RTreeEntry<2>& e) {
          ranges.emplace_back(e.a, e.b);
          return true;
        }));
    std::sort(ranges.begin(), ranges.end());
    uint64_t covered_to = 0;
    for (const auto& [start, end] : ranges) {
      const uint64_t begin = std::max(start, covered_to);
      if (begin < end) {
        out->stats.candidate_cells += end - begin;
        FIELDDB_RETURN_IF_ERROR(store_->Scan(begin, end, visit_cell));
        FIELDDB_RETURN_IF_ERROR(inner);
      }
      covered_to = std::max(covered_to, end);
    }
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = pool_->stats() - io_before;
  return Status::OK();
}

}  // namespace fielddb

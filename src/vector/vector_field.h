#ifndef FIELDDB_VECTOR_VECTOR_FIELD_H_
#define FIELDDB_VECTOR_VECTOR_FIELD_H_

#include <vector>

#include "common/status.h"
#include "field/grid_field.h"
#include "rtree/box.h"

namespace fielddb {

/// A 2-component vector field (k = 2 in the paper's model — e.g. wind as
/// (u, v) velocity components) on a DEM grid: the paper's announced
/// future work ("extend our method to process value queries in vector
/// field databases such as wind", Section 5).
///
/// Both components share the cell structure; a cell's value descriptor
/// is therefore a *2-D box* in value space — the per-component value
/// intervals — and the 1-D R*-tree of the scalar method generalizes to a
/// 2-D R*-tree over these boxes.
class VectorGridField {
 public:
  /// `samples_u` / `samples_v` each hold (cols+1)*(rows+1) row-major
  /// vertex samples of the two components.
  static StatusOr<VectorGridField> Create(uint32_t cols, uint32_t rows,
                                          const Rect2& domain,
                                          std::vector<double> samples_u,
                                          std::vector<double> samples_v);

  CellId NumCells() const { return u_.NumCells(); }
  Rect2 Domain() const { return u_.Domain(); }

  /// The scalar sub-field of one component (0 = u, 1 = v).
  const GridField& component(int c) const { return c == 0 ? u_ : v_; }

  /// Scalar cell record of component `c` for cell `id` (geometry is
  /// identical across components).
  CellRecord ComponentCell(int c, CellId id) const {
    return component(c).GetCell(id);
  }

  /// The cell's 2-D value box: [min_u, max_u] x [min_v, max_v].
  Box<2> CellValueBox(CellId id) const;

  /// Hull of all cell value boxes.
  Box<2> ValueRangeBox() const;

  /// Vector value (u, v) at a point.
  StatusOr<std::pair<double, double>> ValueAt(Point2 p) const;

 private:
  VectorGridField(GridField u, GridField v)
      : u_(std::move(u)), v_(std::move(v)) {}

  GridField u_;
  GridField v_;
};

/// A conjunctive vector value query: u in [u_band], v in [v_band] —
/// "find the regions where the wind blows east at 5..10 m/s and north at
/// 0..2 m/s".
struct VectorBandQuery {
  ValueInterval u;
  ValueInterval v;

  Box<2> AsBox() const {
    Box<2> b;
    b.lo = {u.min, v.min};
    b.hi = {u.max, v.max};
    return b;
  }
};

}  // namespace fielddb

#endif  // FIELDDB_VECTOR_VECTOR_FIELD_H_

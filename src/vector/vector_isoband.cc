#include "vector/vector_isoband.h"

#include "field/interpolation.h"

namespace fielddb {

namespace {

// Clips one linear sub-triangle (with per-vertex u and v samples)
// against both component bands.
Status ClipVectorTriangle(Point2 a, double ua, double va, Point2 b,
                          double ub, double vb, Point2 c, double uc,
                          double vc, const VectorBandQuery& q, Region* out,
                          size_t* appended) {
  ValueInterval iu = ValueInterval::Empty(), iv = ValueInterval::Empty();
  iu.Extend(ua); iu.Extend(ub); iu.Extend(uc);
  iv.Extend(va); iv.Extend(vb); iv.Extend(vc);
  if (!iu.Intersects(q.u) || !iv.Intersects(q.v)) return Status::OK();

  StatusOr<LinearCoeffs> pu = FitTrianglePlane(a, ua, b, ub, c, uc);
  if (!pu.ok()) return pu.status();
  StatusOr<LinearCoeffs> pv = FitTrianglePlane(a, va, b, vb, c, vc);
  if (!pv.ok()) return pv.status();

  ConvexPolygon poly = PolygonFromTriangle(Triangle2{{a, b, c}});
  poly = ClipHalfPlane(poly, pu->gx, pu->gy, pu->c - q.u.min);
  poly = ClipHalfPlane(poly, -pu->gx, -pu->gy, q.u.max - pu->c);
  poly = ClipHalfPlane(poly, pv->gx, pv->gy, pv->c - q.v.min);
  poly = ClipHalfPlane(poly, -pv->gx, -pv->gy, q.v.max - pv->c);
  if (!poly.IsEmpty()) {
    out->pieces.push_back(std::move(poly));
    ++*appended;
  }
  return Status::OK();
}

}  // namespace

StatusOr<size_t> VectorCellIsoband(const VectorCellRecord& cell,
                                   const VectorBandQuery& query,
                                   Region* out) {
  if (query.u.IsEmpty() || query.v.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  size_t appended = 0;
  if (!cell.ValueBox().Intersects(query.AsBox())) return appended;

  if (cell.num_vertices == 3) {
    FIELDDB_RETURN_IF_ERROR(ClipVectorTriangle(
        cell.Vertex(0), cell.u[0], cell.v[0], cell.Vertex(1), cell.u[1],
        cell.v[1], cell.Vertex(2), cell.u[2], cell.v[2], query, out,
        &appended));
    return appended;
  }
  if (cell.num_vertices == 4) {
    const Point2 center = cell.Bounds().Center();
    const double uc = (cell.u[0] + cell.u[1] + cell.u[2] + cell.u[3]) / 4;
    const double vc = (cell.v[0] + cell.v[1] + cell.v[2] + cell.v[3]) / 4;
    for (int i = 0; i < 4; ++i) {
      const int j = (i + 1) % 4;
      FIELDDB_RETURN_IF_ERROR(ClipVectorTriangle(
          cell.Vertex(i), cell.u[i], cell.v[i], cell.Vertex(j), cell.u[j],
          cell.v[j], center, uc, vc, query, out, &appended));
    }
    return appended;
  }
  return Status::InvalidArgument("unsupported cell arity");
}

}  // namespace fielddb

#ifndef FIELDDB_VECTOR_VECTOR_ISOBAND_H_
#define FIELDDB_VECTOR_VECTOR_ISOBAND_H_

#include "common/status.h"
#include "field/region.h"
#include "vector/vector_record.h"

namespace fielddb {

/// Estimation step of a vector band query: the exact sub-region of the
/// cell where u_lo <= u(p) <= u_hi AND v_lo <= v(p) <= v_hi under the
/// piecewise-linear interpretation — each sub-triangle of the cell is
/// clipped by four iso half-planes (two per component). Appends pieces
/// to `*out`; returns the number appended.
StatusOr<size_t> VectorCellIsoband(const VectorCellRecord& cell,
                                   const VectorBandQuery& query,
                                   Region* out);

}  // namespace fielddb

#endif  // FIELDDB_VECTOR_VECTOR_ISOBAND_H_

#ifndef FIELDDB_VECTOR_VECTOR_INDEX_H_
#define FIELDDB_VECTOR_VECTOR_INDEX_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/stats.h"
#include "curve/curves.h"
#include "field/region.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "vector/vector_isoband.h"
#include "vector/vector_record.h"

namespace fielddb {

/// A subfield of a vector field: a Hilbert-contiguous run of cells with
/// the 2-D MBR of their (u, v) values. Generalizes the scalar Subfield.
struct VectorSubfield {
  uint64_t start = 0;
  uint64_t end = 0;
  Box<2> box = Box<2>::Empty();
  double sum_box_sizes = 0.0;  // Σ per-cell PaperSize(u) * PaperSize(v)

  uint64_t NumCells() const { return end - start; }
};

/// Cost model generalizing Section 3.1 to 2-D value boxes, after the 2-D
/// case of Kamel & Faloutsos [14]: a box with normalized extents
/// (Lu, Lv) is touched by the average box query with probability
/// P = (Lu + q̄)(Lv + q̄); the subfield cost is C = P / SI with SI the
/// sum of member cells' value-box sizes.
struct VectorCostConfig {
  double avg_query_fraction = 0.5;
};

class VectorSubfieldCostModel {
 public:
  VectorSubfieldCostModel(const Box<2>& value_range,
                          const VectorCostConfig& config);

  double Cost(const Box<2>& box, double sum_box_sizes) const;
  bool ShouldAppend(const VectorSubfield& current,
                    const Box<2>& cell_box) const;

 private:
  static double BoxPaperSize(const Box<2>& b) {
    return (b.hi[0] - b.lo[0] + 1.0) * (b.hi[1] - b.lo[1] + 1.0);
  }

  VectorCostConfig config_;
  double range_u_;
  double range_v_;
};

/// Greedy grouping of curve-ordered cell value boxes, same insertion
/// rule as the scalar builder.
std::vector<VectorSubfield> BuildVectorSubfields(
    const std::vector<Box<2>>& cell_boxes, const Box<2>& value_range,
    const VectorCostConfig& config);

/// Query-processing methods for vector fields.
enum class VectorIndexMethod {
  kLinearScan,  // scan every cell record
  kIHilbert,    // subfields over Hilbert-ordered cells, 2-D R*-tree
};

const char* VectorIndexMethodName(VectorIndexMethod method);

/// Result of a vector band query.
struct VectorQueryResult {
  Region region;
  QueryStats stats;
};

/// A self-contained vector-field database: cells clustered in Hilbert
/// order in paged storage, indexed (optionally) by a 2-D R*-tree over
/// subfield value boxes.
class VectorFieldDatabase {
 public:
  struct Options {
    VectorIndexMethod method = VectorIndexMethod::kIHilbert;
    CurveType curve = CurveType::kHilbert;
    int curve_order = 16;
    VectorCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 1024;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
  };

  static StatusOr<std::unique_ptr<VectorFieldDatabase>> Build(
      const VectorGridField& field, const Options& options);

  /// Conjunctive band query over both components: exact answer regions.
  Status BandQuery(const VectorBandQuery& query, VectorQueryResult* out);

  /// Replaces the (u, v) samples of field cell `id` (geometry is
  /// immutable); `u.size()` and `v.size()` must match the cell's vertex
  /// count. I-Hilbert refreshes the containing subfield's value box (and
  /// its R*-tree entry) so queries keep their no-false-negative filter.
  Status UpdateCellValues(CellId id, const std::vector<double>& u,
                          const std::vector<double>& v);

  const std::vector<VectorSubfield>& subfields() const {
    return subfields_;
  }
  uint64_t num_cells() const { return store_->size(); }
  BufferPool& pool() { return *pool_; }

 private:
  VectorFieldDatabase() = default;

  VectorIndexMethod method_ = VectorIndexMethod::kIHilbert;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<RecordStore<VectorCellRecord>> store_;
  std::unique_ptr<RStarTree<2>> tree_;  // null for LinearScan
  std::vector<VectorSubfield> subfields_;
  /// Store position of each field cell id (inverse of the build order).
  std::vector<uint64_t> pos_of_;
};

}  // namespace fielddb

#endif  // FIELDDB_VECTOR_VECTOR_INDEX_H_

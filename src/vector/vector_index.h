#ifndef FIELDDB_VECTOR_VECTOR_INDEX_H_
#define FIELDDB_VECTOR_VECTOR_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/field_engine.h"
#include "core/stats.h"
#include "curve/curves.h"
#include "field/region.h"
#include "index/zone_sidecar.h"
#include "plan/ext_planner.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "storage/wal.h"
#include "vector/vector_isoband.h"
#include "vector/vector_record.h"

namespace fielddb {

/// A subfield of a vector field: a Hilbert-contiguous run of cells with
/// the 2-D MBR of their (u, v) values. Generalizes the scalar Subfield.
struct VectorSubfield {
  uint64_t start = 0;
  uint64_t end = 0;
  Box<2> box = Box<2>::Empty();
  double sum_box_sizes = 0.0;  // Σ per-cell PaperSize(u) * PaperSize(v)

  uint64_t NumCells() const { return end - start; }
};

/// Cost model generalizing Section 3.1 to 2-D value boxes, after the 2-D
/// case of Kamel & Faloutsos [14]: a box with normalized extents
/// (Lu, Lv) is touched by the average box query with probability
/// P = (Lu + q̄)(Lv + q̄); the subfield cost is C = P / SI with SI the
/// sum of member cells' value-box sizes.
struct VectorCostConfig {
  double avg_query_fraction = 0.5;
};

class VectorSubfieldCostModel {
 public:
  VectorSubfieldCostModel(const Box<2>& value_range,
                          const VectorCostConfig& config);

  double Cost(const Box<2>& box, double sum_box_sizes) const;
  bool ShouldAppend(const VectorSubfield& current,
                    const Box<2>& cell_box) const;

 private:
  static double BoxPaperSize(const Box<2>& b) {
    return (b.hi[0] - b.lo[0] + 1.0) * (b.hi[1] - b.lo[1] + 1.0);
  }

  VectorCostConfig config_;
  double range_u_;
  double range_v_;
};

/// Streaming vector-subfield partitioner — the 2-D sibling of
/// SubfieldStreamBuilder: cell value boxes arrive one at a time in
/// curve order (the external-sort merge feeds it without materializing
/// all boxes) and Finish() seals the last subfield. BuildVectorSubfields
/// is a thin wrapper, so streamed and vector builds produce identical
/// partitions by construction.
class VectorSubfieldStreamBuilder {
 public:
  VectorSubfieldStreamBuilder(const Box<2>& value_range,
                              const VectorCostConfig& config);

  /// Appends the next cell's value box, growing the open subfield or
  /// sealing it per the paper's insertion rule.
  void Add(const Box<2>& cell_box);

  /// Seals the open subfield and returns the partition. The builder is
  /// consumed.
  std::vector<VectorSubfield> Finish();

 private:
  VectorSubfieldCostModel model_;
  std::vector<VectorSubfield> subfields_;
  VectorSubfield current_;
  uint64_t num_cells_ = 0;
};

/// Greedy grouping of curve-ordered cell value boxes, same insertion
/// rule as the scalar builder.
std::vector<VectorSubfield> BuildVectorSubfields(
    const std::vector<Box<2>>& cell_boxes, const Box<2>& value_range,
    const VectorCostConfig& config);

/// Query-processing methods for vector fields.
enum class VectorIndexMethod {
  kLinearScan,  // scan every cell record
  kIHilbert,    // subfields over Hilbert-ordered cells, 2-D R*-tree
};

const char* VectorIndexMethodName(VectorIndexMethod method);

/// Result of a vector band query.
struct VectorQueryResult {
  Region region;
  QueryStats stats;
  /// The planner's decision this query executed (2-D box zone-map probe
  /// + disk-model costing; see plan/ext_planner.h).
  PhysicalPlan plan;
};

/// A self-contained vector-field database: cells clustered in Hilbert
/// order in paged storage, indexed (optionally) by a 2-D R*-tree over
/// subfield value boxes.
///
/// Hosted on the shared FieldEngine (core/field_engine.h): storage,
/// WAL-backed updates, crash-safe Save/Open and the event log are the
/// engine's; only the catalog format, the record layout and the
/// subfield redo logic are vector-specific.
class VectorFieldDatabase {
 public:
  struct Options {
    VectorIndexMethod method = VectorIndexMethod::kIHilbert;
    CurveType curve = CurveType::kHilbert;
    int curve_order = 16;
    VectorCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 1024;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
    /// Initial access-path policy for band queries (see ExtStorePlanner).
    PlannerMode planner_mode = PlannerMode::kAuto;
    /// Durability for UpdateCellValues (DESIGN.md §14). Requires
    /// `wal_path`; use `<prefix>.wal` for the prefix the database will
    /// be saved under. A logged frame carries u followed by v
    /// (2 × num_vertices samples).
    WalMode wal_mode = WalMode::kOff;
    std::string wal_path;
    /// Structured operational event log. Empty disables it.
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    /// Bounded-memory build (DESIGN.md §16): when nonzero, the Hilbert
    /// linearization runs as an external merge sort under this in-RAM
    /// budget, streaming into the store appender and the 2-D subfield
    /// costing. Byte-identical to the unlimited build.
    size_t build_memory_budget_bytes = 0;
  };

  /// Reopen options, mirroring FieldDatabase::OpenOptions.
  struct OpenOptions {
    size_t pool_pages = 1024;
    WalMode wal_mode = WalMode::kOff;
    /// Optional out-param describing the replay (may be null).
    EngineRecoveryReport* recovery_report = nullptr;
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    PlannerMode planner_mode = PlannerMode::kAuto;
  };

  static StatusOr<std::unique_ptr<VectorFieldDatabase>> Build(
      const VectorGridField& field, const Options& options);

  /// Reopens a database persisted by Save; `<prefix>.wal` frames are
  /// replayed first (see OpenOptions::wal_mode).
  static StatusOr<std::unique_ptr<VectorFieldDatabase>> Open(
      const std::string& prefix);
  static StatusOr<std::unique_ptr<VectorFieldDatabase>> Open(
      const std::string& prefix, const OpenOptions& options);

  /// Persists the database as `<prefix>.pages` + `<prefix>.meta`
  /// through the engine's crash-safe checkpoint pipeline.
  Status Save(const std::string& prefix);
  Status SaveWithCrashPointForTest(const std::string& prefix,
                                   SnapshotCrashPoint crash_point) {
    return SaveImpl(prefix, crash_point);
  }

  /// Conjunctive band query over both components: exact answer regions.
  Status BandQuery(const VectorBandQuery& query, VectorQueryResult* out);

  /// The planner's decision for `query` under the current mode, without
  /// executing anything (zero I/O: the zone-map sidecar is in RAM).
  PhysicalPlan PlanBandQuery(const VectorBandQuery& query) const;

  /// Replaces the (u, v) samples of field cell `id` (geometry is
  /// immutable); `u.size()` and `v.size()` must match the cell's vertex
  /// count. WAL-logged when a log is armed. I-Hilbert refreshes the
  /// containing subfield's value box (and its R*-tree entry) so queries
  /// keep their no-false-negative filter.
  Status UpdateCellValues(CellId id, const std::vector<double>& u,
                          const std::vector<double>& v);

  /// Flushes and closes the storage (see FieldEngine::Close).
  Status Close() { return engine_.Close(); }
  /// Simulated power cut (tests): everything not fsynced is gone.
  Status SimulateCrashForTest() { return engine_.SimulateCrashForTest(); }

  const std::vector<VectorSubfield>& subfields() const {
    return subfields_;
  }
  uint64_t num_cells() const { return store_->size(); }
  VectorIndexMethod method() const { return method_; }
  BufferPool& pool() { return *engine_.pool(); }
  const BoxZoneMap& zone_map() const { return zones_; }
  WriteAheadLog* wal() const { return engine_.wal(); }
  EventLog* event_log() const { return engine_.event_log(); }
  uint32_t epoch() const { return engine_.epoch(); }

  void set_planner_mode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }
  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }

  /// External-sort build telemetry (0 when the build never spilled).
  uint64_t ext_spill_runs() const { return ext_spill_runs_; }
  uint64_t ext_peak_buffered_bytes() const {
    return ext_peak_buffered_bytes_;
  }

  /// Average stats over a query workload (cold cache per query).
  StatusOr<WorkloadStats> RunWorkload(
      const std::vector<VectorBandQuery>& queries);

 private:
  VectorFieldDatabase() = default;

  Status SaveImpl(const std::string& prefix, SnapshotCrashPoint crash_point);

  /// The redo half of an update — shared verbatim by UpdateCellValues
  /// and WAL replay, so recovery maintains the subfield boxes and zone
  /// map exactly like the original mutation did.
  Status ApplyCellValues(CellId id, const std::vector<double>& u,
                         const std::vector<double>& v);

  PhysicalPlan ChoosePlan(const VectorBandQuery& query) const;
  void MaybeLogSlowQuery(const VectorBandQuery& query,
                         const QueryStats& stats,
                         const PhysicalPlan& plan) const;

  /// Shared lifecycle core; declared first so the storage outlives the
  /// store and tree at destruction.
  FieldEngine engine_;
  VectorIndexMethod method_ = VectorIndexMethod::kIHilbert;
  std::unique_ptr<RecordStore<VectorCellRecord>> store_;
  std::unique_ptr<RStarTree<2>> tree_;  // null for LinearScan
  std::vector<VectorSubfield> subfields_;
  /// In-RAM per-slot (u, v) value boxes: the planner's zero-I/O
  /// selectivity probe (rebuilt on Open, maintained on update).
  BoxZoneMap zones_;
  /// Store position of each field cell id (inverse of the build order).
  std::vector<uint64_t> pos_of_;
  std::atomic<PlannerMode> planner_mode_{PlannerMode::kAuto};
  uint64_t ext_spill_runs_ = 0;
  uint64_t ext_peak_buffered_bytes_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_VECTOR_VECTOR_INDEX_H_

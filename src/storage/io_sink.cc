#include "storage/io_sink.h"

namespace fielddb {

namespace {
thread_local IoStats* t_io_sink = nullptr;
}  // namespace

IoStats* CurrentIoSink() { return t_io_sink; }

ScopedIoSink::ScopedIoSink(IoStats* sink) : prev_(t_io_sink) {
  t_io_sink = sink;
}

ScopedIoSink::~ScopedIoSink() { t_io_sink = prev_; }

}  // namespace fielddb

#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "storage/crc32c.h"

namespace fielddb {

namespace {

/// Log instruments, shared by every WriteAheadLog in the process.
struct WalMetrics {
  Counter* appends;
  Counter* bytes_appended;
  Counter* commits;
  Counter* syncs;
  Counter* truncates;
  Counter* torn_truncations;
  Counter* torn_bytes;

  static const WalMetrics& Get() {
    static const WalMetrics m = [] {
      MetricsRegistry& reg = MetricsRegistry::Default();
      return WalMetrics{reg.GetCounter("storage.wal.appends"),
                        reg.GetCounter("storage.wal.bytes_appended"),
                        reg.GetCounter("storage.wal.commits"),
                        reg.GetCounter("storage.wal.syncs"),
                        reg.GetCounter("storage.wal.truncates"),
                        reg.GetCounter("storage.wal.torn_truncations"),
                        reg.GetCounter("storage.wal.torn_bytes")};
    }();
    return m;
  }
};

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

const char* WalModeName(WalMode mode) {
  switch (mode) {
    case WalMode::kOff:
      return "off";
    case WalMode::kAsync:
      return "async";
    case WalMode::kFsyncOnCommit:
      return "fsync";
  }
  return "unknown";
}

bool ParseWalMode(const std::string& text, WalMode* out) {
  if (text == "off") {
    *out = WalMode::kOff;
  } else if (text == "async") {
    *out = WalMode::kAsync;
  } else if (text == "fsync" || text == "fsync_on_commit") {
    *out = WalMode::kFsyncOnCommit;
  } else {
    return false;
  }
  return true;
}

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* file, WalMode mode,
                             uint32_t epoch, uint64_t next_lsn, uint64_t size)
    : path_(std::move(path)), file_(file), mode_(mode), epoch_(epoch),
      next_lsn_(next_lsn), size_(size), synced_size_(size) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

StatusOr<WalScanResult> WriteAheadLog::Scan(const std::string& path) {
  WalScanResult result;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return result;  // no log = empty log

  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed on " + path);
  }
  const long length = std::ftell(f);
  if (length < 0) {
    std::fclose(f);
    return Status::IOError("tell failed on " + path);
  }
  result.file_bytes = static_cast<uint64_t>(length);
  std::rewind(f);

  std::vector<uint8_t> buf(kFrameHeaderSize);
  uint64_t offset = 0;
  uint64_t last_lsn = 0;
  for (;;) {
    if (offset + kFrameHeaderSize > result.file_bytes) {
      if (offset != result.file_bytes) {
        result.torn_reason = "short header";
      }
      break;
    }
    if (std::fread(buf.data(), 1, kFrameHeaderSize, f) !=
        kFrameHeaderSize) {
      result.torn_reason = "header read failed";
      break;
    }
    const uint32_t stored_crc = GetU32(buf.data());
    WalFrame frame;
    frame.epoch = GetU32(buf.data() + 4);
    frame.lsn = GetU64(buf.data() + 8);
    frame.type = GetU32(buf.data() + 16);
    const uint32_t payload_len = GetU32(buf.data() + 20);
    frame.offset = offset;
    if (payload_len > kMaxPayload) {
      result.torn_reason = "payload length out of range";
      break;
    }
    if (offset + kFrameHeaderSize + payload_len > result.file_bytes) {
      result.torn_reason = "short payload";
      break;
    }
    buf.resize(kFrameHeaderSize + payload_len);
    if (std::fread(buf.data() + kFrameHeaderSize, 1, payload_len, f) !=
        payload_len) {
      result.torn_reason = "payload read failed";
      break;
    }
    const uint32_t actual = Crc32c(buf.data() + 4, buf.size() - 4);
    if (UnmaskCrc(stored_crc) != actual) {
      result.torn_reason = "checksum mismatch";
      break;
    }
    if (frame.lsn <= last_lsn) {
      result.torn_reason = "non-monotonic lsn";
      break;
    }
    if (frame.type == kUpdateValuesFrame) {
      if (payload_len < 12) {
        result.torn_reason = "update payload too small";
        break;
      }
      const uint64_t cell_id = GetU64(buf.data() + kFrameHeaderSize);
      if (cell_id >= kInvalidCellId) {
        result.torn_reason = "cell id out of range";
        break;
      }
      frame.cell_id = static_cast<CellId>(cell_id);
      const uint32_t count = GetU32(buf.data() + kFrameHeaderSize + 8);
      // 64-bit on purpose: in uint32 arithmetic a count near 2^29 wraps
      // 12 + count * 8 back onto a small payload_len, and the resize
      // below would become a multi-GB allocation from a hostile file.
      if (uint64_t{payload_len} != 12 + uint64_t{count} * 8) {
        result.torn_reason = "update payload size mismatch";
        break;
      }
      frame.values.resize(count);
      std::memcpy(frame.values.data(), buf.data() + kFrameHeaderSize + 12,
                  count * 8);
    } else {
      result.torn_reason = "unknown frame type";
      break;
    }
    last_lsn = frame.lsn;
    offset += buf.size();
    result.valid_bytes = offset;
    result.frames.push_back(std::move(frame));
    buf.resize(kFrameHeaderSize);
  }
  std::fclose(f);
  return result;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalMode mode, uint32_t epoch) {
  StatusOr<WalScanResult> scan = Scan(path);
  if (!scan.ok()) return scan.status();

  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  if (scan->torn_bytes() > 0) {
    // Cut the torn tail so fresh appends never interleave with garbage.
    if (::ftruncate(::fileno(f), static_cast<off_t>(scan->valid_bytes)) !=
            0 ||
        ::fsync(::fileno(f)) != 0) {
      std::fclose(f);
      return Status::IOError("cannot truncate torn tail of " + path);
    }
    WalMetrics::Get().torn_truncations->Increment();
    WalMetrics::Get().torn_bytes->Increment(scan->torn_bytes());
  }
  if (std::fseek(f, static_cast<long>(scan->valid_bytes), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed on " + path);
  }
  const uint64_t next_lsn =
      scan->frames.empty() ? 1 : scan->frames.back().lsn + 1;
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(
      path, f, mode, epoch, next_lsn, scan->valid_bytes));
}

Status WriteAheadLog::AppendUpdate(CellId id,
                                   const std::vector<double>& values) {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition("wal is closed");
  }
  const uint64_t payload_len = 12 + values.size() * 8;
  if (payload_len > kMaxPayload) {
    return Status::InvalidArgument("wal frame payload too large");
  }

  if (append_error_countdown_ >= 0 && append_error_countdown_-- == 0) {
    broken_ = true;
    return Status::IOError("injected crash: append failed");
  }

  std::vector<uint8_t> frame(kFrameHeaderSize + payload_len);
  PutU32(frame.data() + 4, epoch_);
  PutU64(frame.data() + 8, next_lsn_);
  PutU32(frame.data() + 16, kUpdateValuesFrame);
  PutU32(frame.data() + 20, static_cast<uint32_t>(payload_len));
  PutU64(frame.data() + kFrameHeaderSize, id);
  PutU32(frame.data() + kFrameHeaderSize + 8,
         static_cast<uint32_t>(values.size()));
  std::memcpy(frame.data() + kFrameHeaderSize + 12, values.data(),
              values.size() * 8);
  PutU32(frame.data(), MaskCrc(Crc32c(frame.data() + 4, frame.size() - 4)));

  if (short_append_countdown_ >= 0 && short_append_countdown_-- == 0) {
    // Torn append: a prefix of the frame reaches the platter, then the
    // power cut. The partial bytes are made durable so the subsequent
    // recovery scan really sees them (and truncates them).
    const uint32_t keep =
        std::min<uint32_t>(short_append_keep_,
                           static_cast<uint32_t>(frame.size()));
    if (std::fwrite(frame.data(), 1, keep, file_) != keep ||
        std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
      broken_ = true;
      return Status::IOError("injected crash: torn append write failed");
    }
    synced_size_ = size_ + keep;
    broken_ = true;
    return Status::IOError("injected crash: torn append");
  }

  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    // A partial fwrite leaves torn bytes mid-file with the stream
    // position past them. Further appends would land after the tear and
    // the next recovery scan would silently truncate them even after
    // their Commit was acknowledged — so refuse everything until the
    // database reopens the log and re-scans it.
    broken_ = true;
    return Status::IOError("wal append failed");
  }
  size_ += frame.size();
  ++next_lsn_;
  WalMetrics::Get().appends->Increment();
  WalMetrics::Get().bytes_appended->Increment(frame.size());
  return Status::OK();
}

Status WriteAheadLog::DoSync() {
  if (sync_error_count_ > 0) {
    --sync_error_count_;
    broken_ = true;
    return Status::IOError("injected fsync failure on " + path_);
  }
  if (std::fflush(file_) != 0) {
    broken_ = true;
    return Status::IOError("wal fflush failed");
  }
  if (::fsync(::fileno(file_)) != 0) {
    // fsyncgate: a failed fsync may drop the dirty pages, after which a
    // later "successful" fsync would advance the durable watermark over
    // bytes that never reached the platter. The only safe reaction is
    // to poison the log and force a reopen + re-scan.
    broken_ = true;
    return Status::IOError("wal fsync failed");
  }
  synced_size_ = size_;
  WalMetrics::Get().syncs->Increment();
  return Status::OK();
}

Status WriteAheadLog::Commit() {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition("wal is closed");
  }
  TraceScope span("wal.commit", "wal");
  WalMetrics::Get().commits->Increment();
  if (mode_ == WalMode::kFsyncOnCommit) {
    return DoSync();
  }
  // Async: hand the frames to the OS so a process crash keeps them; a
  // power cut may not.
  if (std::fflush(file_) != 0) {
    broken_ = true;  // some buffered bytes may have been torn mid-file
    return Status::IOError("wal fflush failed");
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition("wal is closed");
  }
  return DoSync();
}

Status WriteAheadLog::Truncate(uint32_t new_epoch) {
  if (file_ == nullptr || broken_) {
    return Status::FailedPrecondition("wal is closed");
  }
  if (sync_error_count_ > 0) {
    --sync_error_count_;
    broken_ = true;
    return Status::IOError("injected fsync failure on " + path_);
  }
  if (std::fflush(file_) != 0 ||
      ::ftruncate(::fileno(file_), 0) != 0 ||
      std::fseek(file_, 0, SEEK_SET) != 0 ||
      ::fsync(::fileno(file_)) != 0) {
    // A half-truncated log in an unknown epoch state must not accept
    // more frames: the checkpoint that requested the truncation has
    // already committed, so anything appended under the old epoch stamp
    // would be skipped as stale by the next recovery.
    broken_ = true;
    return Status::IOError("wal truncate failed");
  }
  epoch_ = new_epoch;
  next_lsn_ = 1;
  size_ = 0;
  synced_size_ = 0;
  WalMetrics::Get().truncates->Increment();
  return Status::OK();
}

Status WriteAheadLog::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = broken_ ? Status::OK() : DoSync();
  std::fclose(file_);
  file_ = nullptr;
  return s;
}

void WriteAheadLog::ArmAppendErrorForTest(int countdown) {
  append_error_countdown_ = countdown;
}

void WriteAheadLog::ArmShortAppendForTest(int countdown,
                                          uint32_t keep_bytes) {
  short_append_countdown_ = countdown;
  short_append_keep_ = keep_bytes;
}

void WriteAheadLog::ArmSyncErrorForTest(int count) {
  sync_error_count_ = count;
}

Status WriteAheadLog::SimulateCrashForTest() {
  if (file_ == nullptr) return Status::OK();
  // Not fsynced: stdio-buffered bytes evaporate with the process; bytes
  // the OS had but the platter did not evaporate with the power. Both
  // reduce to truncating at the durable watermark. (The fflush first
  // drains the stdio buffer so fclose cannot resurrect bytes after the
  // truncation below.)
  std::fflush(file_);
  if (::ftruncate(::fileno(file_), static_cast<off_t>(synced_size_)) != 0) {
    return Status::IOError("simulate-crash truncate failed");
  }
  ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
  broken_ = true;
  return Status::OK();
}

}  // namespace fielddb

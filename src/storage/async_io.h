#ifndef FIELDDB_STORAGE_ASYNC_IO_H_
#define FIELDDB_STORAGE_ASYNC_IO_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace fielddb {

/// One raw slot read inside a batch submission: `len` bytes at byte
/// `offset` of the file into `buf`. The backend fills `status`; a short
/// read (fewer than `len` bytes available) is an IOError naming the
/// offset, exactly like a failed pread.
struct SlotRead {
  uint64_t offset = 0;
  uint8_t* buf = nullptr;
  size_t len = 0;
  Status status;
};

/// Vectored read backend behind DiskPageFile::ReadBatch (DESIGN.md §17).
/// Three implementations, selected once per process at first use:
///
///  - "iouring":  one ring submission per batch, completions reaped in a
///    single io_uring_enter wait. Compiled only when the build found
///    <linux/io_uring.h> (FIELDDB_ENABLE_IOURING) and used only when the
///    running kernel accepts io_uring_setup — a seccomp-filtered or old
///    kernel silently degrades to the portable backend.
///  - "preadv":   contiguous runs of slots coalesced into one preadv
///    each; a failed or short run degrades to per-slot pread so every
///    slot still gets its own exact status.
///  - "sync":     a plain pread loop; the reference implementation every
///    other backend must be indistinguishable from (modulo speed).
///
/// The FIELDDB_ASYNC_IO environment variable ("iouring", "preadv",
/// "sync") pins a backend for tests and A/B runs.
///
/// Thread safety: ReadVectored may be called from any number of threads
/// concurrently (the buffer pool's shards batch independently). The
/// io_uring backend serializes access to its single ring internally;
/// the fallback backends are stateless.
class AsyncIoBackend {
 public:
  virtual ~AsyncIoBackend() = default;

  /// Human-readable backend name ("iouring", "preadv", "sync").
  virtual const char* name() const = 0;

  /// Reads every request in `reqs`, filling each `status`. Failures are
  /// strictly per-request: one bad slot never poisons its neighbors.
  virtual void ReadVectored(int fd, SlotRead* reqs, size_t count) = 0;

  /// Picks the best backend the build and the running kernel support
  /// (see class comment). Never fails: the sync backend always exists.
  static std::unique_ptr<AsyncIoBackend> Create();
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_ASYNC_IO_H_

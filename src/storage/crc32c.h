#ifndef FIELDDB_STORAGE_CRC32C_H_
#define FIELDDB_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace fielddb {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// used by iSCSI, ext4 and most storage engines. Software table-driven
/// implementation — fast enough for page-granularity framing, and
/// portable (no SSE4.2 requirement).
uint32_t Crc32c(const void* data, size_t n);

/// Extends a running CRC with more bytes (crc is the value returned by a
/// previous Crc32c/Crc32cExtend call).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Masked CRC in the style of LevelDB/RocksDB: storing the raw CRC of
/// data that itself embeds CRCs is error-prone (a zeroed page has the
/// CRC of zeros), so persisted checksums are masked with a rotation and
/// an additive constant.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_CRC32C_H_

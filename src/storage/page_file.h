#ifndef FIELDDB_STORAGE_PAGE_FILE_H_
#define FIELDDB_STORAGE_PAGE_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace fielddb {

/// Backing store for pages. Two implementations: in-memory (the default
/// for benchmarks — timing then reflects algorithmic work, while the
/// BufferPool still counts "physical" reads) and an actual on-disk file
/// (useful for persistence tests and to sanity-check the simulation).
class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Number of allocated pages; valid ids are [0, NumPages()).
  virtual uint64_t NumPages() const = 0;

  /// Appends a zeroed page and returns its id.
  virtual StatusOr<PageId> Allocate() = 0;

  /// Reads page `id` into `*out` (resized to page_size() if needed).
  virtual Status Read(PageId id, Page* out) const = 0;

  /// Writes `page` (must have size == page_size()) to page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

 protected:
  explicit PageFile(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size_;
};

/// Heap-backed page file.
class MemPageFile final : public PageFile {
 public:
  explicit MemPageFile(uint32_t page_size = kDefaultPageSize)
      : PageFile(page_size) {}

  uint64_t NumPages() const override { return pages_.size(); }
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) const override;
  Status Write(PageId id, const Page& page) override;

 private:
  std::vector<std::vector<uint8_t>> pages_;
};

/// On-disk page file backed by stdio. Pages live at offset id*page_size.
class DiskPageFile final : public PageFile {
 public:
  ~DiskPageFile() override;

  /// Creates (truncating) a new page file at `path`.
  static StatusOr<std::unique_ptr<DiskPageFile>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  /// Opens an existing page file; the file length must be a multiple of
  /// `page_size`.
  static StatusOr<std::unique_ptr<DiskPageFile>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize);

  uint64_t NumPages() const override { return num_pages_; }
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) const override;
  Status Write(PageId id, const Page& page) override;

 private:
  DiskPageFile(std::FILE* f, uint32_t page_size, uint64_t num_pages)
      : PageFile(page_size), file_(f), num_pages_(num_pages) {}

  std::FILE* file_;
  uint64_t num_pages_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_PAGE_FILE_H_

#ifndef FIELDDB_STORAGE_PAGE_FILE_H_
#define FIELDDB_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace fielddb {

class AsyncIoBackend;

/// Backing store for pages. Two implementations: in-memory (the default
/// for benchmarks — timing then reflects algorithmic work, while the
/// BufferPool still counts "physical" reads) and an actual on-disk file
/// (useful for persistence tests and to sanity-check the simulation).
///
/// Thread safety: Read/Write/Allocate/Sync on both library
/// implementations are safe to call concurrently (the BufferPool's
/// shards issue reads and write-backs in parallel). Same-page
/// Write/Write and Read/Write overlap is the caller's job to exclude —
/// the pool's per-shard locks guarantee it for all pool traffic.
class PageFile {
 public:
  virtual ~PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Number of allocated pages; valid ids are [0, NumPages()).
  virtual uint64_t NumPages() const = 0;

  /// Appends a zeroed page and returns its id.
  virtual StatusOr<PageId> Allocate() = 0;

  /// Reads page `id` into `*out` (resized to page_size() if needed).
  /// Implementations with integrity framing return kCorruption (naming
  /// the page id) instead of handing back bytes that fail verification.
  virtual Status Read(PageId id, Page* out) const = 0;

  /// Vectored read: pages `ids[0..count)` into `outs[0..count)`, one
  /// per-page status in `statuses[0..count)`. Every page is attempted —
  /// a failed page never blocks its neighbors — and each status matches
  /// what a lone Read of that page would have returned (same integrity
  /// verification, same error taxonomy). Returns OK iff every page
  /// succeeded; otherwise the first failing page's status.
  ///
  /// The default loops over Read; DiskPageFile overrides it with a
  /// batched submission through the async I/O backend (io_uring when
  /// available, vectored preads otherwise — storage/async_io.h), which
  /// is what makes BufferPool::PrefetchRange a real pipeline.
  virtual Status ReadBatch(const PageId* ids, size_t count, Page* outs,
                           Status* statuses) const;

  /// Writes `page` (must have size == page_size()) to page `id`.
  virtual Status Write(PageId id, const Page& page) = 0;

  /// Verifies the integrity of page `id` without exposing its contents.
  /// The default reads the page into a scratch buffer, so any Read-side
  /// checksum verification applies; kCorruption identifies a bad page.
  virtual Status VerifyPage(PageId id) const;

  /// Durably flushes buffered writes to the backing medium (fsync for
  /// disk files). No-op for memory-backed files.
  virtual Status Sync() { return Status::OK(); }

 protected:
  explicit PageFile(uint32_t page_size) : page_size_(page_size) {}

  uint32_t page_size_;
};

/// Heap-backed page file.
class MemPageFile final : public PageFile {
 public:
  explicit MemPageFile(uint32_t page_size = kDefaultPageSize)
      : PageFile(page_size) {}

  uint64_t NumPages() const override;
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) const override;
  Status Write(PageId id, const Page& page) override;

 private:
  // Shared: Read/Write touch one slot (stable address); exclusive:
  // Allocate may reallocate the outer vector.
  mutable std::shared_mutex mu_;
  std::vector<std::vector<uint8_t>> pages_;
};

/// Per-page framing prepended to every on-disk page slot:
///   [masked CRC32C (4) | epoch (4) | page id (8)] + payload.
/// The CRC covers epoch, page id and payload, so torn writes, bit rot
/// and misdirected (right data, wrong offset) pages are all detected on
/// Read. The epoch is stamped by each Save generation; a mismatch means
/// the catalog and the page file come from different snapshots (e.g. a
/// crash landed between the two commit renames).
inline constexpr uint32_t kPageHeaderSize = 16;

/// On-disk page file backed by stdio. Page `id` occupies the slot at
/// offset id * (kPageHeaderSize + page_size).
class DiskPageFile final : public PageFile {
 public:
  ~DiskPageFile() override;

  /// Creates (truncating) a new page file at `path`. Pages written are
  /// stamped with `epoch`; reads verify it.
  static StatusOr<std::unique_ptr<DiskPageFile>> Create(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      uint32_t epoch = 1);

  /// Opens an existing page file; the file length must be a multiple of
  /// kPageHeaderSize + `page_size`. Pass `epoch` = 0 to skip epoch
  /// verification (the CRC and page-id checks still apply).
  static StatusOr<std::unique_ptr<DiskPageFile>> Open(
      const std::string& path, uint32_t page_size = kDefaultPageSize,
      uint32_t epoch = 0);

  uint64_t NumPages() const override {
    return num_pages_.load(std::memory_order_acquire);
  }
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) const override;
  /// Batched page reads through the process's async I/O backend: slot
  /// transfers are submitted together (fd-level positioned reads, so
  /// nothing touches the shared stdio position) and each slot is then
  /// verified exactly as Read verifies it. The stdio buffer is flushed
  /// once up front so buffered writes are visible to the fd reads.
  Status ReadBatch(const PageId* ids, size_t count, Page* outs,
                   Status* statuses) const override;
  Status Write(PageId id, const Page& page) override;
  Status Sync() override;

  /// The async read backend's name ("iouring", "preadv", "sync");
  /// resolves the backend if no ReadBatch has run yet.
  const char* async_backend_name() const;

  uint32_t epoch() const { return epoch_; }

  /// Testing back-door: XORs `xor_mask` into one byte of the raw on-disk
  /// slot of page `id` (offset counted from the slot start, i.e. 0..15
  /// hits the header). Simulates bit rot / a torn sector beneath the
  /// checksum layer; a subsequent Read reports kCorruption.
  Status CorruptRawForTest(PageId id, uint32_t offset, uint8_t xor_mask);

 private:
  // Out of line: members include a unique_ptr to the forward-declared
  // AsyncIoBackend.
  DiskPageFile(std::FILE* f, uint32_t page_size, uint64_t num_pages,
               uint32_t epoch);

  uint64_t SlotSize() const { return uint64_t{kPageHeaderSize} + page_size_; }
  /// Caller holds mu_.
  Status WriteSlot(PageId id, const uint8_t* payload);
  /// Verifies a raw slot (CRC -> page id -> epoch, counting
  /// storage.file.corrupt_page_reads on failure) and copies its payload
  /// into `*out`. Shared by Read and ReadBatch so both report identical
  /// corruption taxonomy.
  Status VerifySlot(PageId id, const uint8_t* slot, Page* out) const;
  /// Lazily resolves the async backend (caller holds mu_).
  AsyncIoBackend* BackendLocked() const;

  // Serializes the stdio seek+transfer pairs, which share one file
  // position.
  mutable std::mutex mu_;
  std::FILE* file_;
  std::atomic<uint64_t> num_pages_;
  /// Stamped into written headers; verified on Read when non-zero.
  uint32_t epoch_;
  /// Created on first ReadBatch (under mu_); reads after that go
  /// through it lock-free (positioned fd reads).
  mutable std::unique_ptr<AsyncIoBackend> backend_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_PAGE_FILE_H_

#ifndef FIELDDB_STORAGE_WAL_H_
#define FIELDDB_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "field/cell.h"

namespace fielddb {

/// Durability policy for the write-ahead log (DESIGN.md §14).
enum class WalMode {
  /// No log. Mutations live only in the buffer pool until the next
  /// Save; a crash loses them (the pre-PR-6 contract).
  kOff = 0,
  /// Frames are flushed to the OS on commit but not fsynced: a process
  /// crash loses nothing, a power cut may lose the un-fsynced tail.
  kAsync = 1,
  /// Commit fsyncs the log before the mutation is acknowledged. Group
  /// commit: a batch appends all its frames and pays one fsync.
  kFsyncOnCommit = 2,
};

const char* WalModeName(WalMode mode);
/// Parses "off" / "async" / "fsync" (also "fsync_on_commit").
bool ParseWalMode(const std::string& text, WalMode* out);

/// One decoded log record. `offset` is the frame's byte offset in the
/// file (diagnostics: the CLI's `wal` dump prints it).
struct WalFrame {
  uint64_t lsn = 0;
  uint32_t epoch = 0;
  uint32_t type = 0;
  uint64_t offset = 0;
  CellId cell_id = kInvalidCellId;
  std::vector<double> values;
};

/// Result of scanning a log file front to back. `frames` holds every
/// intact frame in order (any epoch — the caller filters stale epochs);
/// `valid_bytes` is the length of the intact prefix. Anything after it
/// is a torn tail: a frame cut by a crash mid-append, or garbage that
/// fails the CRC. `torn_reason` says which check cut the scan short.
struct WalScanResult {
  std::vector<WalFrame> frames;
  uint64_t file_bytes = 0;
  uint64_t valid_bytes = 0;
  std::string torn_reason;

  uint64_t torn_bytes() const { return file_bytes - valid_bytes; }
};

/// Append-only mutation log with CRC32C-framed, epoch-stamped records:
///   [masked CRC32C (4) | epoch (4) | lsn (8) | type (4) | len (4)] + payload
/// The CRC covers everything after itself, so a torn append, bit rot or
/// a frame from a different file are all detected by the scan, which
/// truncates the log at the first invalid byte. Frames are stamped with
/// the snapshot epoch they extend; after a checkpoint renames a new
/// snapshot into place, any frames still carrying the old epoch are
/// recognized as superseded and skipped by recovery.
///
/// Failure poisoning: any real append/flush/fsync failure marks the log
/// broken — every later operation returns FailedPrecondition until the
/// database reopens the file (which re-scans and cuts any torn tail).
/// Retrying in place is never safe: a partial fwrite leaves torn bytes
/// the stream position has already skipped past, and a failed fsync may
/// have dropped the dirty pages entirely (fsyncgate), so a later
/// "successful" sync would lie about durability.
///
/// Thread safety: none. The engine's mutation contract (DESIGN.md §11)
/// already gives writers the database to themselves, and the log is
/// only touched by mutation and checkpoint paths.
class WriteAheadLog {
 public:
  static constexpr uint32_t kFrameHeaderSize = 24;
  /// Frame types.
  static constexpr uint32_t kUpdateValuesFrame = 1;
  /// Upper bound on a frame payload; anything larger fails the scan
  /// (and Append refuses to write it).
  static constexpr uint32_t kMaxPayload = 1u << 20;

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Decodes `path` front to back without modifying it. A missing file
  /// yields an empty result (a log that was never written is a valid
  /// empty log).
  static StatusOr<WalScanResult> Scan(const std::string& path);

  /// Opens (creating if absent) the log for appending: scans it,
  /// physically truncates any torn tail, and positions the next append
  /// after the last intact frame. New frames are stamped with `epoch`.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalMode mode, uint32_t epoch);

  /// Appends (buffered — not yet durable) one update frame.
  Status AppendUpdate(CellId id, const std::vector<double>& values);

  /// Makes every appended frame durable per the mode: kFsyncOnCommit
  /// fsyncs, kAsync flushes to the OS. The caller acknowledges the
  /// mutation only after Commit returns OK.
  Status Commit();

  /// Unconditional fflush + fsync (Close and checkpoints use it).
  Status Sync();

  /// Checkpoint epilogue: every logged frame is now captured by the
  /// snapshot, so drop them all and adopt the snapshot's new epoch.
  Status Truncate(uint32_t new_epoch);

  /// Syncs and closes the file; the log is unusable afterwards.
  Status Close();

  const std::string& path() const { return path_; }
  WalMode mode() const { return mode_; }
  uint32_t epoch() const { return epoch_; }
  uint64_t next_lsn() const { return next_lsn_; }
  /// Logical size: bytes of intact frames appended (buffered or not).
  uint64_t size_bytes() const { return size_; }
  /// Bytes known durable (advanced only by a real fsync).
  uint64_t synced_bytes() const { return synced_size_; }

  /// --- Deterministic crash hooks (tests only) ---

  /// The append `countdown` appends from now (0 = the next one) fails
  /// with IOError before writing anything, and the log refuses all
  /// subsequent appends (the "process" died mid-pipeline).
  void ArmAppendErrorForTest(int countdown);

  /// The append `countdown` appends from now writes only the first
  /// `keep_bytes` bytes of its frame, makes them durable, then fails —
  /// a power cut mid-append that tore the frame on the platter.
  void ArmShortAppendForTest(int countdown, uint32_t keep_bytes);

  /// The next `count` syncs (Commit in fsync mode, Sync, Truncate)
  /// fail with IOError without advancing the durable watermark and, like
  /// any real fsync failure, poison the log.
  void ArmSyncErrorForTest(int count);

  /// Power cut: everything not fsynced is gone. Truncates the file to
  /// the durable watermark and closes the log (idempotent). Reopening
  /// the database afterwards replays exactly what a machine reset
  /// would have left.
  Status SimulateCrashForTest();

 private:
  WriteAheadLog(std::string path, std::FILE* file, WalMode mode,
                uint32_t epoch, uint64_t next_lsn, uint64_t size);

  Status DoSync();

  std::string path_;
  std::FILE* file_ = nullptr;
  WalMode mode_ = WalMode::kOff;
  uint32_t epoch_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t size_ = 0;
  uint64_t synced_size_ = 0;
  bool broken_ = false;  // an I/O failure or simulated crash poisoned the log

  // Crash-hook state. -1 = disarmed; 0 = fire on the next call.
  int append_error_countdown_ = -1;
  int short_append_countdown_ = -1;
  uint32_t short_append_keep_ = 0;
  int sync_error_count_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_WAL_H_

#include "storage/fault_injection.h"

#include <cstring>
#include <string>

namespace fielddb {

bool FaultInjectingPageFile::ConsumeFault(
    std::unordered_map<PageId, int>* faults, PageId id) {
  auto it = faults->find(id);
  if (it == faults->end() || it->second == 0) return false;
  if (it->second == kPermanent) return true;
  --it->second;
  return true;
}

bool FaultInjectingPageFile::TickKillLocked() const {
  if (kill_countdown_ < 0) return false;
  if (kill_countdown_ == 0) {
    ++counters_.killed_ops;
    return true;
  }
  --kill_countdown_;
  return false;
}

Status FaultInjectingPageFile::Read(PageId id, Page* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadLocked(id, out);
}

Status FaultInjectingPageFile::ReadBatch(const PageId* ids, size_t count,
                                         Page* outs,
                                         Status* statuses) const {
  std::lock_guard<std::mutex> lock(mu_);
  Status first = Status::OK();
  for (size_t i = 0; i < count; ++i) {
    statuses[i] = ReadLocked(ids[i], &outs[i]);
    if (first.ok() && !statuses[i].ok()) first = statuses[i];
  }
  return first;
}

Status FaultInjectingPageFile::ReadLocked(PageId id, Page* out) const {
  if (TickKillLocked()) {
    return Status::IOError("injected kill point: device gone (read)");
  }
  if (ConsumeFault(&read_faults_, id)) {
    ++counters_.read_errors;
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  if (options_.read_error_prob > 0.0 &&
      rng_.NextDouble() < options_.read_error_prob) {
    ++counters_.read_errors;
    return Status::IOError("injected transient read fault on page " +
                           std::to_string(id));
  }
  if (const auto it = corrupt_.find(id); it != corrupt_.end()) {
    if (!it->second.silent) {
      ++counters_.corrupt_reads;
      return Status::Corruption("injected corruption on page " +
                                std::to_string(id));
    }
    FIELDDB_RETURN_IF_ERROR(base_->Read(id, out));
    for (uint32_t i = 0; i < out->size(); ++i) {
      out->data()[i] ^= it->second.xor_mask;
    }
    ++counters_.silent_flips;
    return Status::OK();
  }
  return base_->Read(id, out);
}

Status FaultInjectingPageFile::Write(PageId id, const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  if (TickKillLocked()) {
    return Status::IOError("injected kill point: device gone (write)");
  }
  if (ConsumeFault(&write_faults_, id)) {
    ++counters_.write_errors;
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  if (options_.write_error_prob > 0.0 &&
      rng_.NextDouble() < options_.write_error_prob) {
    ++counters_.write_errors;
    return Status::IOError("injected transient write fault on page " +
                           std::to_string(id));
  }
  if (const auto it = torn_writes_.find(id); it != torn_writes_.end()) {
    const uint32_t keep = it->second;
    torn_writes_.erase(it);
    Page mixed(page_size_);
    FIELDDB_RETURN_IF_ERROR(base_->Read(id, &mixed));
    std::memcpy(mixed.data(), page.data(), keep);
    FIELDDB_RETURN_IF_ERROR(base_->Write(id, mixed));
    // A checksum over the half-old, half-new slot no longer matches;
    // subsequent reads see the tear.
    corrupt_[id] = Corruption{false, 0xff};
    ++counters_.torn_writes;
    return Status::OK();
  }
  return base_->Write(id, page);
}

Status FaultInjectingPageFile::VerifyPage(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = corrupt_.find(id); it != corrupt_.end()) {
    return Status::Corruption("injected corruption on page " +
                              std::to_string(id));
  }
  return base_->VerifyPage(id);
}

StatusOr<PageId> FaultInjectingPageFile::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (TickKillLocked()) {
    return Status::IOError("injected kill point: device gone (allocate)");
  }
  return base_->Allocate();
}

Status FaultInjectingPageFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (TickKillLocked()) {
    return Status::IOError("injected kill point: device gone (sync)");
  }
  if (sync_faults_ != 0) {
    if (sync_faults_ != kPermanent) --sync_faults_;
    ++counters_.sync_errors;
    return Status::IOError("injected sync fault");
  }
  return base_->Sync();
}

void FaultInjectingPageFile::TearNextWrite(PageId id, uint32_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_writes_[id] = keep_bytes < page_size_ ? keep_bytes : page_size_;
}

void FaultInjectingPageFile::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  read_faults_.clear();
  write_faults_.clear();
  torn_writes_.clear();
  corrupt_.clear();
  sync_faults_ = 0;
  kill_countdown_ = -1;
}

}  // namespace fielddb

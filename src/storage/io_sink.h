#ifndef FIELDDB_STORAGE_IO_SINK_H_
#define FIELDDB_STORAGE_IO_SINK_H_

#include "storage/io_stats.h"

namespace fielddb {

/// Per-thread I/O attribution. A query installs its QueryContext's
/// IoStats as the calling thread's sink; every BufferPool event on that
/// thread is then mirrored into it lock-free (the sink is plain memory
/// touched by exactly one thread). This is what lets N concurrent
/// queries each report an exact per-query IoStats without sharing any
/// mutable scratch: the pool's own counters stay process-wide, the sink
/// carries the per-query delta.
///
/// Returns the calling thread's current sink, or nullptr when no query
/// is attributing I/O on this thread (e.g. index build).
IoStats* CurrentIoSink();

/// RAII installer. Nests: the previous sink is restored on destruction,
/// so a query issued from inside another query's callback attributes
/// inner I/O to the inner sink only.
class ScopedIoSink {
 public:
  explicit ScopedIoSink(IoStats* sink);
  ~ScopedIoSink();

  ScopedIoSink(const ScopedIoSink&) = delete;
  ScopedIoSink& operator=(const ScopedIoSink&) = delete;

 private:
  IoStats* prev_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_IO_SINK_H_

#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/trace_buffer.h"
#include "storage/io_sink.h"

namespace fielddb {

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPageId;
    other.frame_ = nullptr;
  }
  return *this;
}

const Page& PinnedPage::page() const {
  assert(valid());
  return frame_->page;
}

Page& PinnedPage::MutablePage() {
  assert(valid());
  frame_->dirty.store(true, std::memory_order_relaxed);
  return frame_->page;
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    id_ = kInvalidPageId;
    frame_ = nullptr;
  }
}

namespace {

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity, size_t num_shards)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity) {
  if (num_shards == 0) {
    // Small pools (the sizes eviction tests use) keep the single global
    // LRU so their eviction order is exactly the classic one; pools big
    // enough for real workloads split for concurrency.
    num_shards = capacity_ >= 256 ? kDefaultShards : 1;
  }
  if (num_shards > capacity_) num_shards = capacity_;
  num_shards_ = num_shards;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].capacity =
        capacity_ / num_shards_ + (i < capacity_ % num_shards_ ? 1 : 0);
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  m_logical_reads_ = reg.GetCounter("storage.pool.logical_reads");
  m_physical_reads_ = reg.GetCounter("storage.pool.physical_reads");
  m_evictions_ = reg.GetCounter("storage.pool.evictions");
  m_read_retries_ = reg.GetCounter("storage.pool.read_retries");
  m_failed_reads_ = reg.GetCounter("storage.pool.failed_reads");
  m_failed_writes_ = reg.GetCounter("storage.pool.failed_writes");
  m_prefetch_issued_ = reg.GetCounter("storage.pool.prefetch_issued");
  m_prefetch_hit_ = reg.GetCounter("storage.pool.prefetch_hit");
  m_prefetch_failed_ = reg.GetCounter("storage.pool.prefetch_failed");
  m_batch_reads_ = reg.GetCounter("storage.pool.batch_reads");
  m_read_latency_us_ = reg.GetHistogram("storage.pool.read_latency_us");
  m_write_latency_us_ = reg.GetHistogram("storage.pool.write_latency_us");
}

BufferPool::~BufferPool() {
  if (closed_.load(std::memory_order_acquire)) return;
  // Under no-steal the dirty frames must NOT reach the file outside a
  // checkpoint; the WAL holds their mutations, so dropping them is the
  // crash-consistent default.
  if (no_steal_.load(std::memory_order_acquire)) return;
  const Status s = Flush();
  if (!s.ok()) {
    // A destructor cannot surface the error; callers that care must use
    // Close(). Dirty data may not have reached the file.
    std::fprintf(stderr,
                 "BufferPool: dropping dirty frames at destruction: %s\n",
                 s.ToString().c_str());
  }
}

void BufferPool::CountLogicalRead() {
  stats_.logical_reads.fetch_add(1, std::memory_order_relaxed);
  if (IoStats* sink = CurrentIoSink()) ++sink->logical_reads;
  m_logical_reads_->Increment();
}

bool BufferPool::CountPhysicalRead(PageId id) {
  const uint64_t phys =
      stats_.physical_reads.fetch_add(1, std::memory_order_relaxed) + 1;
  const PageId prev = last_physical_read_.exchange(id, std::memory_order_relaxed);
  const bool sequential = (id == prev + 1);
  if (sequential) {
    stats_.sequential_reads.fetch_add(1, std::memory_order_relaxed);
  }
  if (IoStats* sink = CurrentIoSink()) {
    ++sink->physical_reads;
    if (sequential) ++sink->sequential_reads;
  }
  m_physical_reads_->Increment();
  return MetricsRegistry::enabled() && phys % kLatencySampleEvery == 0;
}

Status BufferPool::ReadWithRetry(PageId id, Page* out) {
  Status s = file_->Read(id, out);
  for (int attempt = 0; !s.ok() && s.code() == StatusCode::kIOError &&
                        attempt < kMaxReadRetries;
       ++attempt) {
    stats_.read_retries.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* sink = CurrentIoSink()) ++sink->read_retries;
    m_read_retries_->Increment();
    // Capped exponential backoff: 64us, 128us, 256us. Long enough to
    // ride out a transient stall, short enough not to dominate tests.
    std::this_thread::sleep_for(std::chrono::microseconds(64) * (1 << attempt));
    s = file_->Read(id, out);
  }
  if (!s.ok()) {
    stats_.failed_reads.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* sink = CurrentIoSink()) ++sink->failed_reads;
    m_failed_reads_->Increment();
  }
  return s;
}

Status BufferPool::Fetch(PageId id, PinnedPage* out) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("buffer pool is closed");
  }
  CountLogicalRead();
  Shard& sh = ShardOf(id);
  // The new pin is constructed under the shard lock but assigned into
  // *out only after it is released: assigning may Release a previous
  // pin *out holds, and that Unpin may need this same shard's mutex.
  PinnedPage pin;
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.frames.find(id);
    if (it != sh.frames.end()) {
      BufferFrame& f = it->second;
      if (f.in_lru) {
        sh.lru.erase(f.lru_pos);
        f.in_lru = false;
      }
      f.pin_count.fetch_add(1, std::memory_order_relaxed);
      pin = PinnedPage(this, id, &f);
    } else {
      FIELDDB_RETURN_IF_ERROR(EnsureCapacityLocked(sh));
      // The file read happens while the shard lock is held: concurrent
      // misses for pages in the same shard serialize, which also
      // guarantees the same page is never read (and counted) twice by
      // racing threads.
      const bool time_read = CountPhysicalRead(id);
      Page page(file_->page_size());
      if (time_read) {
        const auto t0 = std::chrono::steady_clock::now();
        FIELDDB_RETURN_IF_ERROR(ReadWithRetry(id, &page));
        m_read_latency_us_->Record(MicrosSince(t0));
      } else {
        FIELDDB_RETURN_IF_ERROR(ReadWithRetry(id, &page));
      }
      auto [fit, inserted] = sh.frames.try_emplace(id);
      assert(inserted);
      (void)inserted;
      BufferFrame& f = fit->second;
      f.page = std::move(page);
      f.pin_count.store(1, std::memory_order_relaxed);
      pin = PinnedPage(this, id, &f);
    }
  }
  *out = std::move(pin);
  return Status::OK();
}

Status BufferPool::PrefetchRange(PageId first, size_t count) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("buffer pool is closed");
  }
  TraceScope span("pool.prefetch", "pool");
  span.set_items(count);

  // Pass 1 — classify under brief shard locks: which of the pages are
  // already resident (count a hit, done) and which must be read.
  std::vector<PageId> missing;
  missing.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PageId id = first + i;
    Shard& sh = ShardOf(id);
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.frames.find(id) != sh.frames.end()) {
      m_prefetch_hit_->Increment();
    } else {
      missing.push_back(id);
    }
  }
  if (missing.empty()) return Status::OK();

  // Pass 2 — one vectored ReadBatch for every miss, with NO shard lock
  // held: the whole window is in flight at once (io_uring / preadv on
  // disk files), which is the pipeline that makes readahead overlap
  // rather than serialize. Frames come later, so a concurrent Fetch of
  // one of these pages may race us and read it itself; pass 3 detects
  // that and discards our copy.
  std::vector<Page> pages(missing.size(), Page(file_->page_size()));
  std::vector<Status> statuses(missing.size());
  const bool timing = MetricsRegistry::enabled();
  const auto t0 = timing ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  {
    TraceScope reap("pool.reap", "pool");
    reap.set_items(missing.size());
    file_->ReadBatch(missing.data(), missing.size(), pages.data(),
                     statuses.data());
  }
  m_batch_reads_->Increment();
  if (timing) {
    m_read_latency_us_->Record(MicrosSince(t0) /
                               static_cast<double>(missing.size()));
  }

  // Pass 3 — install the successful pages, in ascending order so the
  // sequential-read accounting sees the same id stream a Fetch loop
  // would. Readahead is speculative, so a failed page is counted only
  // by storage.pool.prefetch_failed — never as a physical or failed
  // read — and left absent for Fetch's normal counted, retried read,
  // keeping I/O totals identical to the no-readahead path. On success
  // the read counts as physical (+sequential when ids run
  // consecutively) exactly like the Fetch miss it replaces, and never
  // as logical.
  for (size_t k = 0; k < missing.size(); ++k) {
    const PageId id = missing[k];
    if (!statuses[k].ok()) {
      m_prefetch_failed_->Increment();
      continue;
    }
    Shard& sh = ShardOf(id);
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.frames.find(id) != sh.frames.end()) {
      // A Fetch raced us and already read (and counted) this page;
      // our copy is redundant and counts nowhere.
      continue;
    }
    if (!EnsureCapacityLocked(sh).ok()) {
      // Shard is wedged (all frames pinned, or the victim's write-back
      // failed). Readahead is optional; leave the page to Fetch.
      continue;
    }
    CountPhysicalRead(id);
    m_prefetch_issued_->Increment();
    auto [fit, inserted] = sh.frames.try_emplace(id);
    assert(inserted);
    (void)inserted;
    BufferFrame& f = fit->second;
    f.page = std::move(pages[k]);
    // Unpinned and immediately evictable: enter at the MRU end.
    sh.lru.push_back(id);
    f.lru_pos = std::prev(sh.lru.end());
    f.in_lru = true;
  }
  return Status::OK();
}

Status BufferPool::PinMany(PageId first, size_t count,
                           std::vector<PinnedPage>* out) {
  const size_t original = out->size();
  FIELDDB_RETURN_IF_ERROR(PrefetchRange(first, count));
  out->reserve(original + count);
  for (size_t i = 0; i < count; ++i) {
    PinnedPage pin;
    const Status s = Fetch(first + i, &pin);
    if (!s.ok()) {
      out->resize(original);
      return s;
    }
    out->push_back(std::move(pin));
  }
  return Status::OK();
}

StatusOr<PageId> BufferPool::Allocate(PinnedPage* out) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("buffer pool is closed");
  }
  StatusOr<PageId> id = file_->Allocate();
  if (!id.ok()) return id.status();
  Shard& sh = ShardOf(*id);
  PinnedPage pin;  // assigned into *out outside the lock, as in Fetch
  {
    std::lock_guard<std::mutex> lock(sh.mu);
    FIELDDB_RETURN_IF_ERROR(EnsureCapacityLocked(sh));
    auto [fit, inserted] = sh.frames.try_emplace(*id);
    assert(inserted);
    (void)inserted;
    BufferFrame& f = fit->second;
    f.page = Page(file_->page_size());
    f.pin_count.store(1, std::memory_order_relaxed);
    f.dirty.store(true, std::memory_order_relaxed);
    pin = PinnedPage(this, *id, &f);
  }
  *out = std::move(pin);
  return *id;
}

void BufferPool::Unpin(PageId id) {
  Shard& sh = ShardOf(id);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.frames.find(id);
  assert(it != sh.frames.end());
  BufferFrame& f = it->second;
  const uint32_t prev = f.pin_count.fetch_sub(1, std::memory_order_relaxed);
  assert(prev > 0);
  (void)prev;
  if (prev == 1) {
    sh.lru.push_back(id);
    f.lru_pos = std::prev(sh.lru.end());
    f.in_lru = true;
  }
}

Status BufferPool::WriteBackLocked(PageId id, BufferFrame& frame) {
  if (frame.dirty.load(std::memory_order_relaxed)) {
    const bool time_write = MetricsRegistry::enabled();
    const auto t0 = time_write ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    const Status s = file_->Write(id, frame.page);
    if (!s.ok()) {
      stats_.failed_writes.fetch_add(1, std::memory_order_relaxed);
      if (IoStats* sink = CurrentIoSink()) ++sink->failed_writes;
      m_failed_writes_->Increment();
      return s;
    }
    if (time_write) m_write_latency_us_->Record(MicrosSince(t0));
    frame.dirty.store(false, std::memory_order_relaxed);
    stats_.writes.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* sink = CurrentIoSink()) ++sink->writes;
  }
  return Status::OK();
}

Status BufferPool::EnsureCapacityLocked(Shard& sh) {
  if (sh.frames.size() < sh.capacity) return Status::OK();
  if (sh.lru.empty()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  // Reached only when a frame must actually be evicted, so the span
  // traces eviction pressure (and its write-back cost), not every pin.
  TraceScope span("pool.evict", "pool");
  if (no_steal_.load(std::memory_order_acquire)) {
    // Dirty frames are pinned to memory until the next checkpoint:
    // evict the least-recently-used *clean* frame instead.
    for (auto lit = sh.lru.begin(); lit != sh.lru.end(); ++lit) {
      auto it = sh.frames.find(*lit);
      assert(it != sh.frames.end());
      BufferFrame& f = it->second;
      if (f.dirty.load(std::memory_order_relaxed)) continue;
      f.in_lru = false;
      sh.lru.erase(lit);
      sh.frames.erase(it);
      stats_.evictions.fetch_add(1, std::memory_order_relaxed);
      if (IoStats* sink = CurrentIoSink()) ++sink->evictions;
      m_evictions_->Increment();
      return Status::OK();
    }
    return Status::FailedPrecondition(
        "buffer pool full of dirty frames: checkpoint required");
  }
  const PageId victim = sh.lru.front();
  sh.lru.pop_front();
  auto it = sh.frames.find(victim);
  assert(it != sh.frames.end());
  BufferFrame& f = it->second;
  f.in_lru = false;
  const Status s = WriteBackLocked(victim, f);
  if (!s.ok()) {
    // The victim stays resident (its dirty data would otherwise be
    // lost); re-enter it into the LRU so the shard's bookkeeping stays
    // consistent and a later eviction can retry the write-back.
    sh.lru.push_back(victim);
    f.lru_pos = std::prev(sh.lru.end());
    f.in_lru = true;
    return s;
  }
  sh.frames.erase(it);
  stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  if (IoStats* sink = CurrentIoSink()) ++sink->evictions;
  m_evictions_->Increment();
  return Status::OK();
}

Status BufferPool::Flush() {
  if (no_steal_.load(std::memory_order_acquire)) {
    // No-steal forbids in-place write-back; the checkpoint captures
    // dirty frames via TryGetResident into a fresh snapshot instead.
    return Status::OK();
  }
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto& [id, frame] : sh.frames) {
      FIELDDB_RETURN_IF_ERROR(WriteBackLocked(id, frame));
    }
  }
  return Status::OK();
}

Status BufferPool::Close() {
  if (closed_.load(std::memory_order_acquire)) return Status::OK();
  FIELDDB_RETURN_IF_ERROR(Flush());
  FIELDDB_RETURN_IF_ERROR(file_->Sync());
  closed_.store(true, std::memory_order_release);
  return Status::OK();
}

Status BufferPool::Clear() {
  const bool no_steal = no_steal_.load(std::memory_order_acquire);
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    // Snapshot the eviction candidates first: under no-steal a dirty
    // frame is skipped (left resident *and* back in the LRU), so a
    // simple pop-from-front loop would spin on it forever.
    std::vector<PageId> victims(sh.lru.begin(), sh.lru.end());
    for (const PageId victim : victims) {
      auto it = sh.frames.find(victim);
      assert(it != sh.frames.end());
      BufferFrame& f = it->second;
      if (no_steal && f.dirty.load(std::memory_order_relaxed)) continue;
      sh.lru.erase(f.lru_pos);
      f.in_lru = false;
      const Status s = WriteBackLocked(victim, f);
      if (!s.ok()) {
        sh.lru.push_back(victim);
        f.lru_pos = std::prev(sh.lru.end());
        f.in_lru = true;
        return s;
      }
      sh.frames.erase(it);
    }
  }
  return Status::OK();
}

Status BufferPool::Abandon() {
  if (closed_.load(std::memory_order_acquire)) return Status::OK();
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto& [id, frame] : sh.frames) {
      if (frame.pin_count.load(std::memory_order_relaxed) != 0) {
        return Status::FailedPrecondition(
            "cannot abandon buffer pool: a frame is still pinned");
      }
      (void)id;
    }
  }
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lru.clear();
    sh.frames.clear();
  }
  closed_.store(true, std::memory_order_release);
  return Status::OK();
}

bool BufferPool::TryGetResident(PageId id, Page* out) {
  Shard& sh = ShardOf(id);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.frames.find(id);
  if (it == sh.frames.end()) return false;
  *out = it->second.page;
  return true;
}

size_t BufferPool::num_frames() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    total += shards_[i].frames.size();
  }
  return total;
}

}  // namespace fielddb

#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

namespace fielddb {

PinnedPage& PinnedPage::operator=(PinnedPage&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPageId;
  }
  return *this;
}

const Page& PinnedPage::page() const {
  assert(valid());
  return pool_->FrameOf(id_).page;
}

Page& PinnedPage::MutablePage() {
  assert(valid());
  BufferPool::Frame& f = pool_->FrameOf(id_);
  f.dirty = true;
  return f.page;
}

void PinnedPage::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    id_ = kInvalidPageId;
  }
}

namespace {

double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  m_logical_reads_ = reg.GetCounter("storage.pool.logical_reads");
  m_physical_reads_ = reg.GetCounter("storage.pool.physical_reads");
  m_evictions_ = reg.GetCounter("storage.pool.evictions");
  m_read_retries_ = reg.GetCounter("storage.pool.read_retries");
  m_failed_reads_ = reg.GetCounter("storage.pool.failed_reads");
  m_failed_writes_ = reg.GetCounter("storage.pool.failed_writes");
  m_read_latency_us_ = reg.GetHistogram("storage.pool.read_latency_us");
  m_write_latency_us_ = reg.GetHistogram("storage.pool.write_latency_us");
}

BufferPool::~BufferPool() {
  if (closed_) return;
  const Status s = Flush();
  if (!s.ok()) {
    // A destructor cannot surface the error; callers that care must use
    // Close(). Dirty data may not have reached the file.
    std::fprintf(stderr,
                 "BufferPool: dropping dirty frames at destruction: %s\n",
                 s.ToString().c_str());
  }
}

BufferPool::Frame& BufferPool::FrameOf(PageId id) {
  auto it = frames_.find(id);
  assert(it != frames_.end());
  return it->second;
}

Status BufferPool::ReadWithRetry(PageId id, Page* out) {
  Status s = file_->Read(id, out);
  for (int attempt = 0; !s.ok() && s.code() == StatusCode::kIOError &&
                        attempt < kMaxReadRetries;
       ++attempt) {
    ++stats_.read_retries;
    m_read_retries_->Increment();
    // Capped exponential backoff: 64us, 128us, 256us. Long enough to
    // ride out a transient stall, short enough not to dominate tests.
    std::this_thread::sleep_for(std::chrono::microseconds(64) * (1 << attempt));
    s = file_->Read(id, out);
  }
  if (!s.ok()) {
    ++stats_.failed_reads;
    m_failed_reads_->Increment();
  }
  return s;
}

Status BufferPool::Fetch(PageId id, PinnedPage* out) {
  if (closed_) {
    return Status::FailedPrecondition("buffer pool is closed");
  }
  ++stats_.logical_reads;
  m_logical_reads_->Increment();
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    Frame& f = it->second;
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    *out = PinnedPage(this, id);
    return Status::OK();
  }
  FIELDDB_RETURN_IF_ERROR(EnsureCapacity());
  ++stats_.physical_reads;
  m_physical_reads_->Increment();
  if (id == last_physical_read_ + 1) ++stats_.sequential_reads;
  last_physical_read_ = id;
  Frame frame;
  frame.page = Page(file_->page_size());
  const bool time_read = MetricsRegistry::enabled() &&
                         stats_.physical_reads % kLatencySampleEvery == 0;
  if (time_read) {
    const auto t0 = std::chrono::steady_clock::now();
    FIELDDB_RETURN_IF_ERROR(ReadWithRetry(id, &frame.page));
    m_read_latency_us_->Record(MicrosSince(t0));
  } else {
    FIELDDB_RETURN_IF_ERROR(ReadWithRetry(id, &frame.page));
  }
  frame.pin_count = 1;
  frames_.emplace(id, std::move(frame));
  *out = PinnedPage(this, id);
  return Status::OK();
}

StatusOr<PageId> BufferPool::Allocate(PinnedPage* out) {
  if (closed_) {
    return Status::FailedPrecondition("buffer pool is closed");
  }
  StatusOr<PageId> id = file_->Allocate();
  if (!id.ok()) return id.status();
  FIELDDB_RETURN_IF_ERROR(EnsureCapacity());
  Frame frame;
  frame.page = Page(file_->page_size());
  frame.pin_count = 1;
  frame.dirty = true;
  frames_.emplace(*id, std::move(frame));
  *out = PinnedPage(this, *id);
  return *id;
}

void BufferPool::Unpin(PageId id) {
  Frame& f = FrameOf(id);
  assert(f.pin_count > 0);
  if (--f.pin_count == 0) {
    lru_.push_back(id);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::WriteBack(PageId id, Frame& frame) {
  if (frame.dirty) {
    const bool time_write = MetricsRegistry::enabled();
    const auto t0 = time_write ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{};
    const Status s = file_->Write(id, frame.page);
    if (!s.ok()) {
      ++stats_.failed_writes;
      m_failed_writes_->Increment();
      return s;
    }
    if (time_write) m_write_latency_us_->Record(MicrosSince(t0));
    frame.dirty = false;
    ++stats_.writes;
  }
  return Status::OK();
}

Status BufferPool::EnsureCapacity() {
  if (frames_.size() < capacity_) return Status::OK();
  if (lru_.empty()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  const PageId victim = lru_.front();
  lru_.pop_front();
  Frame& f = FrameOf(victim);
  f.in_lru = false;
  const Status s = WriteBack(victim, f);
  if (!s.ok()) {
    // The victim stays resident (its dirty data would otherwise be
    // lost); re-enter it into the LRU so the pool's bookkeeping stays
    // consistent and a later eviction can retry the write-back.
    lru_.push_back(victim);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
    return s;
  }
  frames_.erase(victim);
  ++stats_.evictions;
  m_evictions_->Increment();
  return Status::OK();
}

Status BufferPool::Flush() {
  for (auto& [id, frame] : frames_) {
    FIELDDB_RETURN_IF_ERROR(WriteBack(id, frame));
  }
  return Status::OK();
}

Status BufferPool::Close() {
  if (closed_) return Status::OK();
  FIELDDB_RETURN_IF_ERROR(Flush());
  FIELDDB_RETURN_IF_ERROR(file_->Sync());
  closed_ = true;
  return Status::OK();
}

Status BufferPool::Clear() {
  while (!lru_.empty()) {
    const PageId victim = lru_.front();
    lru_.pop_front();
    Frame& f = FrameOf(victim);
    f.in_lru = false;
    const Status s = WriteBack(victim, f);
    if (!s.ok()) {
      lru_.push_back(victim);
      f.lru_pos = std::prev(lru_.end());
      f.in_lru = true;
      return s;
    }
    frames_.erase(victim);
  }
  return Status::OK();
}

}  // namespace fielddb

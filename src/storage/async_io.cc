#include "storage/async_io.h"

#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if FIELDDB_ENABLE_IOURING
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <mutex>
#endif

namespace fielddb {

namespace {

Status ShortReadError(uint64_t offset, size_t got, size_t want) {
  return Status::IOError("short read at offset " + std::to_string(offset) +
                         ": " + std::to_string(got) + " of " +
                         std::to_string(want) + " bytes");
}

Status ErrnoReadError(uint64_t offset, int err) {
  return Status::IOError("read failed at offset " + std::to_string(offset) +
                         ": " + std::strerror(err));
}

/// pread that retries EINTR and partial transfers until the request is
/// complete or the file ends. The reference semantics every backend's
/// per-slot result must match.
Status PreadFully(int fd, uint8_t* buf, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoReadError(offset, errno);
    }
    if (n == 0) return ShortReadError(offset, done, len);
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// The portable reference backend: one blocking pread per slot.
class SyncBackend final : public AsyncIoBackend {
 public:
  const char* name() const override { return "sync"; }

  void ReadVectored(int fd, SlotRead* reqs, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      reqs[i].status = PreadFully(fd, reqs[i].buf, reqs[i].len,
                                  reqs[i].offset);
    }
  }
};

/// Coalesces contiguous slots into vectored preadv calls. Requests
/// arrive in submission order; a run is a maximal stretch where each
/// slot starts exactly where the previous one ended (the common case:
/// the buffer pool prefetches ascending page ranges). A failed or short
/// run is retried slot by slot so statuses stay per-request exact.
class PreadvBackend final : public AsyncIoBackend {
 public:
  const char* name() const override { return "preadv"; }

  void ReadVectored(int fd, SlotRead* reqs, size_t count) override {
    // Keep runs well under IOV_MAX (1024 on Linux); readahead batches
    // are far smaller anyway.
    constexpr size_t kMaxRun = 512;
    size_t i = 0;
    std::vector<struct iovec> iov;
    while (i < count) {
      size_t j = i + 1;
      while (j < count && j - i < kMaxRun &&
             reqs[j].offset == reqs[j - 1].offset + reqs[j - 1].len) {
        ++j;
      }
      ReadRun(fd, reqs + i, j - i, &iov);
      i = j;
    }
  }

 private:
  static void ReadRun(int fd, SlotRead* run, size_t n,
                      std::vector<struct iovec>* iov) {
    if (n == 1) {
      run[0].status = PreadFully(fd, run[0].buf, run[0].len, run[0].offset);
      return;
    }
    iov->clear();
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      iov->push_back({run[i].buf, run[i].len});
      total += run[i].len;
    }
    ssize_t got = ::preadv(fd, iov->data(), static_cast<int>(n),
                           static_cast<off_t>(run[0].offset));
    while (got < 0 && errno == EINTR) {
      got = ::preadv(fd, iov->data(), static_cast<int>(n),
                     static_cast<off_t>(run[0].offset));
    }
    if (got == static_cast<ssize_t>(total)) {
      for (size_t i = 0; i < n; ++i) run[i].status = Status::OK();
      return;
    }
    // Error or short transfer: degrade to per-slot preads so each slot
    // reports its own exact status (only the slots past the short point
    // should fail, and with offsets a caller can act on).
    for (size_t i = 0; i < n; ++i) {
      run[i].status = PreadFully(fd, run[i].buf, run[i].len, run[i].offset);
    }
  }
};

#if FIELDDB_ENABLE_IOURING

/// Raw-syscall io_uring backend (no liburing dependency): one shared
/// ring, SQEs filled directly in the mmap'd arrays, completions reaped
/// after a single blocking io_uring_enter per chunk. Ring accesses use
/// acquire/release atomics on the shared head/tail indices, matching
/// the kernel's ordering contract.
class IoUringBackend final : public AsyncIoBackend {
 public:
  static std::unique_ptr<AsyncIoBackend> TryCreate() {
    auto backend = std::unique_ptr<IoUringBackend>(new IoUringBackend());
    if (!backend->Init()) return nullptr;
    return backend;
  }

  ~IoUringBackend() override {
    if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (!single_mmap_ && cq_ring_ != MAP_FAILED && cq_ring_ != nullptr) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED && sqes_ != nullptr) {
      ::munmap(sqes_, sqe_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "iouring"; }

  void ReadVectored(int fd, SlotRead* reqs, size_t count) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t done = 0;
    while (done < count) {
      const size_t chunk = std::min<size_t>(count - done, sq_entries_);
      if (!RunChunk(fd, reqs + done, chunk)) {
        // The ring refused the submission (should not happen on a
        // healthy ring); serve the rest with plain preads rather than
        // failing the batch.
        for (size_t i = done; i < count; ++i) {
          reqs[i].status =
              PreadFully(fd, reqs[i].buf, reqs[i].len, reqs[i].offset);
        }
        return;
      }
      done += chunk;
    }
  }

 private:
  IoUringBackend() = default;

  static int SysSetup(unsigned entries, struct io_uring_params* p) {
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
  }
  static int SysEnter(int fd, unsigned to_submit, unsigned min_complete,
                      unsigned flags) {
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                      min_complete, flags, nullptr, 0));
  }

  bool Init() {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = SysSetup(kRingEntries, &p);
    if (ring_fd_ < 0) return false;  // old kernel / seccomp: fall back

    sq_entries_ = p.sq_entries;
    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(__u32);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap_) {
      sq_ring_bytes_ = cq_ring_bytes_ =
          std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    cq_ring_ = single_mmap_
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return false;
    sqe_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes_ == MAP_FAILED) return false;

    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  /// Submits `n` (<= sq_entries_) reads and blocks until all complete.
  /// Returns false only when the kernel rejected the submission itself.
  bool RunChunk(int fd, SlotRead* reqs, size_t n) {
    auto* sqe_array = static_cast<io_uring_sqe*>(sqes_);
    unsigned tail = *sq_tail_;  // single submitter (mu_ held)
    for (size_t i = 0; i < n; ++i) {
      const unsigned idx = tail & sq_mask_;
      io_uring_sqe* sqe = &sqe_array[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = fd;
      sqe->addr = reinterpret_cast<uint64_t>(reqs[i].buf);
      sqe->len = static_cast<__u32>(reqs[i].len);
      sqe->off = reqs[i].offset;
      sqe->user_data = i;
      sq_array_[idx] = idx;
      ++tail;
    }
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);

    size_t submitted = 0;
    while (submitted < n) {
      const int ret = SysEnter(ring_fd_, static_cast<unsigned>(n - submitted),
                               0, 0);
      if (ret < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return false;
      }
      submitted += static_cast<size_t>(ret);
    }

    size_t completed = 0;
    while (completed < n) {
      unsigned head = *cq_head_;
      const unsigned cq_tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (head != cq_tail && completed < n) {
        const io_uring_cqe* cqe = &cqes_[head & cq_mask_];
        SlotRead& req = reqs[cqe->user_data];
        if (cqe->res < 0) {
          req.status = ErrnoReadError(req.offset, -cqe->res);
        } else if (static_cast<size_t>(cqe->res) < req.len) {
          // The kernel may legitimately complete a read short mid-file;
          // finish it with a plain pread, which also distinguishes a
          // true end-of-file short read.
          const size_t got = static_cast<size_t>(cqe->res);
          req.status = PreadFully(fd, req.buf + got, req.len - got,
                                  req.offset + got);
        } else {
          req.status = Status::OK();
        }
        ++head;
        ++completed;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      if (completed < n) {
        const int ret =
            SysEnter(ring_fd_, 0, static_cast<unsigned>(n - completed),
                     IORING_ENTER_GETEVENTS);
        if (ret < 0 && errno != EINTR && errno != EAGAIN) {
          // The wait itself failed; completions may be lost. Reads are
          // idempotent, so serve the whole chunk synchronously instead
          // of guessing which requests finished.
          for (size_t i = 0; i < n; ++i) {
            reqs[i].status =
                PreadFully(fd, reqs[i].buf, reqs[i].len, reqs[i].offset);
          }
          return true;
        }
      }
    }
    return true;
  }

  static constexpr unsigned kRingEntries = 64;

  std::mutex mu_;
  int ring_fd_ = -1;
  bool single_mmap_ = false;
  size_t sq_entries_ = 0;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  void* sqes_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqe_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
};

#endif  // FIELDDB_ENABLE_IOURING

}  // namespace

std::unique_ptr<AsyncIoBackend> AsyncIoBackend::Create() {
  const char* forced = std::getenv("FIELDDB_ASYNC_IO");
  if (forced != nullptr) {
    const std::string choice(forced);
    if (choice == "sync") return std::make_unique<SyncBackend>();
    if (choice == "preadv") return std::make_unique<PreadvBackend>();
#if FIELDDB_ENABLE_IOURING
    if (choice == "iouring") {
      if (auto ring = IoUringBackend::TryCreate()) return ring;
      return std::make_unique<PreadvBackend>();
    }
#endif
    // Unknown (or unavailable) choice: fall through to auto-detection.
  }
#if FIELDDB_ENABLE_IOURING
  if (auto ring = IoUringBackend::TryCreate()) return ring;
#endif
  return std::make_unique<PreadvBackend>();
}

}  // namespace fielddb

#ifndef FIELDDB_STORAGE_FAULT_INJECTION_H_
#define FIELDDB_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace fielddb {

/// Probabilistic fault schedule for FaultInjectingPageFile. All sampling
/// is driven by a single seeded xoshiro stream, so a given (seed,
/// operation sequence) pair always injects the same faults — failure
/// tests are exactly reproducible.
struct FaultInjectionOptions {
  uint64_t seed = 0;
  /// Per-call probability that a Read fails with a transient IOError
  /// (independent draws, so retries eventually succeed).
  double read_error_prob = 0.0;
  /// Per-call probability that a Write fails with an IOError.
  double write_error_prob = 0.0;
};

/// Decorator wrapping any PageFile with a deterministic fault schedule:
/// transient and permanent read/write errors, torn (prefix-only) writes,
/// and bit-flip corruption. Detected corruption mirrors what a
/// checksummed DiskPageFile reports — Read returns kCorruption naming
/// the page — while silent corruption hands back flipped bits, modeling
/// storage without integrity framing.
///
/// The wrapper does not own the underlying file unless constructed with
/// the owning overload.
///
/// Thread safety: one mutex serializes the schedule lookups, the rng
/// draw and the wrapped call, so concurrent readers see a coherent
/// fault schedule (at the cost of serializing I/O through the wrapper —
/// fine for the failure tests this exists for).
class FaultInjectingPageFile final : public PageFile {
 public:
  explicit FaultInjectingPageFile(PageFile* base,
                                  const FaultInjectionOptions& options = {})
      : PageFile(base->page_size()), base_(base), options_(options),
        rng_(options.seed) {}

  FaultInjectingPageFile(std::unique_ptr<PageFile> base,
                         const FaultInjectionOptions& options = {})
      : FaultInjectingPageFile(base.get(), options) {
    owned_ = std::move(base);
  }

  uint64_t NumPages() const override { return base_->NumPages(); }
  StatusOr<PageId> Allocate() override;
  Status Read(PageId id, Page* out) const override;
  /// Batched reads inject per submitted page, in submission order, with
  /// exactly the schedule semantics of `count` single Reads — an armed
  /// fault on any page of the batch fires on that page alone, and the
  /// deterministic countdowns (FailNextReads, KillAfterOps) tick once
  /// per page. The wrapped file's own batch path is deliberately NOT
  /// used: page-by-page delegation keeps the injection point exact.
  Status ReadBatch(const PageId* ids, size_t count, Page* outs,
                   Status* statuses) const override;
  Status Write(PageId id, const Page& page) override;
  Status VerifyPage(PageId id) const override;
  Status Sync() override;

  /// --- Deterministic schedules (override the probabilistic draws) ---

  /// The next `count` reads of `id` fail with a transient IOError.
  void FailNextReads(PageId id, int count) {
    std::lock_guard<std::mutex> lock(mu_);
    read_faults_[id] = count;
  }
  /// Every read of `id` fails with an IOError until ClearFaults().
  void FailAllReads(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    read_faults_[id] = kPermanent;
  }
  /// The next `count` writes to `id` fail with a transient IOError.
  void FailNextWrites(PageId id, int count) {
    std::lock_guard<std::mutex> lock(mu_);
    write_faults_[id] = count;
  }
  /// Every write to `id` fails with an IOError until ClearFaults().
  void FailAllWrites(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    write_faults_[id] = kPermanent;
  }

  /// The next write to `id` is torn: only the first `keep_bytes` bytes
  /// reach the underlying file, the tail keeps its previous contents,
  /// and the caller sees success (exactly what a power cut mid-sector
  /// looks like). The page is then marked detected-corrupt, as a
  /// checksum over the mixed contents would be.
  void TearNextWrite(PageId id, uint32_t keep_bytes);

  /// Marks `id` detected-corrupt: reads and verification report
  /// kCorruption, as checksummed storage would after bit rot.
  void CorruptPage(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_[id] = Corruption{false, 0xff};
  }

  /// Marks `id` silently corrupt: reads succeed but every byte of the
  /// returned payload is XORed with `xor_mask` (storage without
  /// checksums hands back garbage). VerifyPage still reports it.
  void SilentlyCorruptPage(PageId id, uint8_t xor_mask = 0x01) {
    std::lock_guard<std::mutex> lock(mu_);
    corrupt_[id] = Corruption{true, xor_mask};
  }

  /// The next `count` Sync calls fail with an IOError — the fsync
  /// failure mode ("fsyncgate"): the kernel reports the error once and
  /// the durability of previously written pages is unknown.
  void FailNextSyncs(int count) {
    std::lock_guard<std::mutex> lock(mu_);
    sync_faults_ = count;
  }
  /// Every Sync fails until ClearFaults().
  void FailAllSyncs() {
    std::lock_guard<std::mutex> lock(mu_);
    sync_faults_ = kPermanent;
  }

  /// Deterministic kill point: the next `ops` operations (Read, Write,
  /// Allocate, Sync) succeed, then every subsequent operation fails
  /// with an IOError — the device vanished mid-pipeline. Counting down
  /// operations lets a crash harness bisect a pipeline into every
  /// possible interruption point without knowing its internals.
  void KillAfterOps(int ops) {
    std::lock_guard<std::mutex> lock(mu_);
    kill_countdown_ = ops;
  }
  /// Remaining operations before the kill point fires (-1 = disarmed).
  int kill_countdown() const {
    std::lock_guard<std::mutex> lock(mu_);
    return kill_countdown_;
  }

  /// Drops every scheduled fault and corruption mark.
  void ClearFaults();

  /// Injection counters (what the schedule actually fired).
  struct Counters {
    uint64_t read_errors = 0;
    uint64_t write_errors = 0;
    uint64_t torn_writes = 0;
    uint64_t corrupt_reads = 0;  // reads answered with kCorruption
    uint64_t silent_flips = 0;   // reads answered with flipped bits
    uint64_t sync_errors = 0;    // Syncs answered with kIOError
    uint64_t killed_ops = 0;     // operations refused past the kill point
  };
  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

  PageFile* base() const { return base_; }

 private:
  static constexpr int kPermanent = -1;

  struct Corruption {
    bool silent = false;
    uint8_t xor_mask = 0xff;
  };

  /// Consumes one scheduled fault for `id` if armed.
  static bool ConsumeFault(std::unordered_map<PageId, int>* faults,
                           PageId id);

  /// One read through the full fault schedule; caller holds mu_.
  Status ReadLocked(PageId id, Page* out) const;

  /// Advances the kill-point countdown; returns true once it has
  /// expired (the operation must fail). Caller holds mu_.
  bool TickKillLocked() const;

  PageFile* base_;
  std::unique_ptr<PageFile> owned_;
  FaultInjectionOptions options_;
  mutable std::mutex mu_;
  mutable Rng rng_;
  mutable Counters counters_;
  // Remaining failure counts per page (kPermanent = never recovers).
  mutable std::unordered_map<PageId, int> read_faults_;
  std::unordered_map<PageId, int> write_faults_;
  std::unordered_map<PageId, uint32_t> torn_writes_;
  std::unordered_map<PageId, Corruption> corrupt_;
  int sync_faults_ = 0;           // remaining Sync failures (kPermanent = all)
  mutable int kill_countdown_ = -1;  // -1 = disarmed; 0 = dead
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_FAULT_INJECTION_H_

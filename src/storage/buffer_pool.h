#ifndef FIELDDB_STORAGE_BUFFER_POOL_H_
#define FIELDDB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace fielddb {

class BufferPool;

/// One resident page (internal to BufferPool; exposed at namespace scope
/// only so PinnedPage's inline accessors can dereference it). The map
/// entry, LRU membership and pin transitions are guarded by the owning
/// shard's mutex; `dirty` is atomic because PinnedPage::MutablePage sets
/// it without taking the shard lock.
struct BufferFrame {
  Page page;
  std::atomic<uint32_t> pin_count{0};
  std::atomic<bool> dirty{false};
  // Position in the shard's LRU list when pin_count == 0.
  std::list<PageId>::iterator lru_pos{};
  bool in_lru = false;
};

/// RAII pin on a buffer-pool frame. While alive, the underlying page is
/// guaranteed not to be evicted; `page()` stays valid. Marking the pin
/// dirty causes a write-back on eviction / flush. A pin is held and
/// released by one thread; distinct threads may hold distinct pins on
/// the same page concurrently.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }

  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  const Page& page() const;
  /// Grants mutable access and marks the frame dirty. Mutating a page
  /// concurrently with readers of the same page is a caller-level data
  /// race — the engine's contract is that writers (updates, Save) have
  /// the database to themselves.
  Page& MutablePage();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, PageId id, BufferFrame* frame)
      : pool_(pool), id_(id), frame_(frame) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  BufferFrame* frame_ = nullptr;
};

/// A fixed-capacity LRU page cache over a PageFile, safe for concurrent
/// readers: the frame table and LRU list are split into shards (pages
/// map to shards by id), each guarded by its own mutex, so N threads
/// fetching different pages contend only when their pages share a shard.
/// Pool-wide I/O counters are atomic; per-query attribution flows
/// through the calling thread's ScopedIoSink (storage/io_sink.h). All
/// page traffic in the library goes through a pool, which is also where
/// the experiment harness reads its I/O counters (logical accesses vs.
/// misses).
///
/// Failure behavior: transient read faults (kIOError) are absorbed by a
/// bounded retry loop with capped backoff; corruption and out-of-range
/// errors are never retried. A failed write-back leaves the dirty frame
/// resident and re-enters it into the LRU, so the data is not lost and a
/// later Flush/eviction can retry.
class BufferPool {
 public:
  /// Reads that fail with kIOError are retried up to this many times
  /// before the error propagates to the caller.
  static constexpr int kMaxReadRetries = 3;

  /// Shard count used when `num_shards` is 0 and the pool is large
  /// enough to split.
  static constexpr size_t kDefaultShards = 16;

  /// Default readahead window (pages) for range scans — the paper's
  /// batch depth; tunable per database via
  /// FieldDatabaseOptions::readahead_pages.
  static constexpr size_t kDefaultReadaheadPages = 8;

  /// `capacity` is the number of frames; must be >= 1. `num_shards` = 0
  /// picks automatically: kDefaultShards for pools of >= 256 frames, 1
  /// (exact global-LRU semantics) for the small pools tests use. The
  /// pool does not take ownership of `file`; the file's Read must be
  /// safe to call from multiple shards concurrently (both library
  /// PageFiles are).
  BufferPool(PageFile* file, size_t capacity, size_t num_shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the file on a miss. Safe to call
  /// from any number of threads concurrently.
  Status Fetch(PageId id, PinnedPage* out);

  /// Batched readahead: loads pages [first, first + count) that are not
  /// yet resident into unpinned frames, so subsequent Fetches of them
  /// hit. The misses are submitted as ONE vectored PageFile::ReadBatch
  /// (io_uring / preadv on disk files) with no shard lock held, then
  /// installed page by page — the real async pipeline behind range
  /// scans. Best effort — a page whose frame cannot be made (shard full
  /// of pins) or whose read fails is skipped, leaving Fetch's normal
  /// counted-and-retried read path authoritative for it; failed batch
  /// reads count the `storage.pool.prefetch_failed` metric (and nothing
  /// else, so I/O totals stay readahead-invariant).
  ///
  /// Accounting: a prefetch read counts as a physical (and, when the ids
  /// run consecutively, sequential) read exactly like the Fetch it
  /// replaces, and never as a logical read — so a scan's I/O totals are
  /// identical with and without readahead. Already-resident pages count
  /// only the `storage.pool.prefetch_hit` metric.
  Status PrefetchRange(PageId first, size_t count);

  /// Readahead window used by range scans (CellStore::ScanRanges*).
  /// Set once at database-build/open time, before queries run.
  void set_readahead_pages(size_t n) {
    readahead_pages_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  size_t readahead_pages() const {
    return readahead_pages_.load(std::memory_order_relaxed);
  }

  /// Pins pages [first, first + count) in order, appending one pin per
  /// page to `*out`. Issues one PrefetchRange over the span first, so
  /// the misses are read back-to-back. On error, pins already taken are
  /// released and `*out` is restored to its original size.
  Status PinMany(PageId first, size_t count, std::vector<PinnedPage>* out);

  /// Allocates a fresh page in the file and pins it (dirty).
  StatusOr<PageId> Allocate(PinnedPage* out);

  /// Writes back all dirty frames.
  Status Flush();

  /// Flushes and shuts the pool down; the explicit counterpart to the
  /// destructor (which can only log a failed final flush, not report
  /// it). Idempotent; after a successful Close, Fetch/Allocate fail
  /// with kFailedPrecondition. A failing Close leaves the pool open so
  /// the caller can retry once the fault clears.
  Status Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Drops every unpinned frame (after flushing it). Used by benchmarks
  /// to cold-start the cache between runs. Under no-steal, dirty frames
  /// are skipped (they stay resident) instead of flushed.
  Status Clear();

  /// No-steal policy (WAL mode, DESIGN.md §14): when set, a dirty frame
  /// is never written back by eviction, Flush, Clear, or the
  /// destructor — the on-disk pages always hold exactly the last
  /// checkpoint, so recovery is a pure logical redo of the log and a
  /// torn in-place page write is architecturally impossible. Eviction
  /// picks the least-recently-used *clean* frame; if every frame is
  /// dirty the pool reports FailedPrecondition ("checkpoint required").
  /// After its snapshot renames commit, the checkpoint epilogue briefly
  /// clears no-steal and Flushes the dirty frames into the still-open
  /// (now unlinked) pre-checkpoint inode, which both clears the dirty
  /// bits and keeps the live handle serving post-checkpoint state.
  void set_no_steal(bool v) { no_steal_.store(v, std::memory_order_release); }
  bool no_steal() const { return no_steal_.load(std::memory_order_acquire); }

  /// Drops every frame without writing anything back, then shuts the
  /// pool down. The crash-consistent counterpart to Close(): in WAL
  /// mode all uncheckpointed mutations live in the log, so the dirty
  /// frames are deliberately discarded. Fails if any frame is pinned.
  Status Abandon();

  /// Copies page `id` out of the pool if it is resident (dirty or
  /// clean), without promoting it in the LRU or touching the file.
  /// The checkpoint uses this to capture in-memory state page by page
  /// with zero pool pressure. Returns false on a miss.
  bool TryGetResident(PageId id, Page* out);

  /// Snapshot of the pool-wide I/O counters. Each counter is exact;
  /// a snapshot taken while traffic is in flight may be skewed between
  /// counters by the in-flight events.
  IoStats stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return num_shards_; }
  /// Total resident frames across shards (locks each shard briefly).
  size_t num_frames() const;
  PageFile* file() const { return file_; }

 private:
  friend class PinnedPage;

  struct Shard {
    std::mutex mu;
    size_t capacity = 0;
    std::unordered_map<PageId, BufferFrame> frames;
    // Unpinned frames in LRU order (front = least recently used).
    std::list<PageId> lru;
  };

  Shard& ShardOf(PageId id) { return shards_[id % num_shards_]; }
  void Unpin(PageId id);
  /// Evicts one unpinned frame if the shard is at capacity. Fails if
  /// all of the shard's frames are pinned. Caller holds `shard.mu`.
  Status EnsureCapacityLocked(Shard& shard);
  /// Caller holds the owning shard's mutex.
  Status WriteBackLocked(PageId id, BufferFrame& frame);
  /// file_->Read with the bounded transient-fault retry policy.
  Status ReadWithRetry(PageId id, Page* out);
  /// Counter updates: pool-wide atomic + calling thread's sink + metric.
  void CountLogicalRead();
  /// Returns whether this physical read should be latency-sampled.
  bool CountPhysicalRead(PageId id);

  PageFile* file_;
  size_t capacity_;
  size_t num_shards_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> no_steal_{false};
  std::unique_ptr<Shard[]> shards_;
  AtomicIoStats stats_;
  // Previous physical read's page id, for sequential-read accounting.
  // Pool-wide: under one reader it reproduces the single-thread counts
  // exactly; under concurrent readers interleaved streams make the
  // split approximate (as they would on a real disk head).
  std::atomic<PageId> last_physical_read_{kInvalidPageId - 1};

  // Process-wide instruments (registered once per pool; cheap relaxed
  // RMW updates on the hot path, see obs/metrics.h). Physical-read
  // latency is sampled 1-in-kLatencySampleEvery to keep the clock calls
  // off the common path; write-backs are rare enough to time every one.
  static constexpr uint64_t kLatencySampleEvery = 16;
  Counter* m_logical_reads_;
  Counter* m_physical_reads_;
  Counter* m_evictions_;
  Counter* m_read_retries_;
  Counter* m_failed_reads_;
  Counter* m_failed_writes_;
  Counter* m_prefetch_issued_;
  Counter* m_prefetch_hit_;
  Counter* m_prefetch_failed_;
  Counter* m_batch_reads_;
  Histogram* m_read_latency_us_;
  Histogram* m_write_latency_us_;

  std::atomic<size_t> readahead_pages_{kDefaultReadaheadPages};
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_BUFFER_POOL_H_

#ifndef FIELDDB_STORAGE_BUFFER_POOL_H_
#define FIELDDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace fielddb {

class BufferPool;

/// RAII pin on a buffer-pool frame. While alive, the underlying page is
/// guaranteed not to be evicted; `page()` stays valid. Marking the pin
/// dirty causes a write-back on eviction / flush.
class PinnedPage {
 public:
  PinnedPage() = default;
  ~PinnedPage() { Release(); }

  PinnedPage(PinnedPage&& other) noexcept { *this = std::move(other); }
  PinnedPage& operator=(PinnedPage&& other) noexcept;
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  const Page& page() const;
  /// Grants mutable access and marks the frame dirty.
  Page& MutablePage();

  /// Drops the pin early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PinnedPage(BufferPool* pool, PageId id) : pool_(pool), id_(id) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
};

/// A fixed-capacity LRU page cache over a PageFile. All page traffic in
/// the library goes through a pool, which is also where the experiment
/// harness reads its I/O counters (logical accesses vs. misses).
///
/// Failure behavior: transient read faults (kIOError) are absorbed by a
/// bounded retry loop with capped backoff; corruption and out-of-range
/// errors are never retried. A failed write-back leaves the dirty frame
/// resident and re-enters it into the LRU, so the data is not lost and a
/// later Flush/eviction can retry.
class BufferPool {
 public:
  /// Reads that fail with kIOError are retried up to this many times
  /// before the error propagates to the caller.
  static constexpr int kMaxReadRetries = 3;

  /// `capacity` is the number of frames; must be >= 1. The pool does not
  /// take ownership of `file`.
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the file on a miss.
  Status Fetch(PageId id, PinnedPage* out);

  /// Allocates a fresh page in the file and pins it (dirty).
  StatusOr<PageId> Allocate(PinnedPage* out);

  /// Writes back all dirty frames.
  Status Flush();

  /// Flushes and shuts the pool down; the explicit counterpart to the
  /// destructor (which can only log a failed final flush, not report
  /// it). Idempotent; after a successful Close, Fetch/Allocate fail
  /// with kFailedPrecondition. A failing Close leaves the pool open so
  /// the caller can retry once the fault clears.
  Status Close();

  bool closed() const { return closed_; }

  /// Drops every unpinned frame (after flushing it). Used by benchmarks
  /// to cold-start the cache between runs.
  Status Clear();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  size_t capacity() const { return capacity_; }
  size_t num_frames() const { return frames_.size(); }
  PageFile* file() const { return file_; }

 private:
  friend class PinnedPage;

  struct Frame {
    Page page;
    uint32_t pin_count = 0;
    bool dirty = false;
    // Position in lru_ when pin_count == 0.
    std::list<PageId>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(PageId id);
  Frame& FrameOf(PageId id);
  /// Evicts one unpinned frame if at capacity. Fails if all are pinned.
  Status EnsureCapacity();
  Status WriteBack(PageId id, Frame& frame);
  /// file_->Read with the bounded transient-fault retry policy.
  Status ReadWithRetry(PageId id, Page* out);

  PageFile* file_;
  size_t capacity_;
  bool closed_ = false;
  std::unordered_map<PageId, Frame> frames_;
  // Unpinned frames in LRU order (front = least recently used).
  std::list<PageId> lru_;
  IoStats stats_;
  // Previous physical read's page id, for sequential-read accounting.
  PageId last_physical_read_ = kInvalidPageId - 1;

  // Process-wide instruments (registered once per pool; cheap relaxed
  // updates on the hot path, see obs/metrics.h). Physical-read latency
  // is sampled 1-in-kLatencySampleEvery to keep the clock calls off the
  // common path; write-backs are rare enough to time every one.
  static constexpr uint64_t kLatencySampleEvery = 16;
  Counter* m_logical_reads_;
  Counter* m_physical_reads_;
  Counter* m_evictions_;
  Counter* m_read_retries_;
  Counter* m_failed_reads_;
  Counter* m_failed_writes_;
  Histogram* m_read_latency_us_;
  Histogram* m_write_latency_us_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_BUFFER_POOL_H_

#include "storage/page_file.h"

#include <unistd.h>

#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_buffer.h"
#include "storage/async_io.h"
#include "storage/crc32c.h"

namespace fielddb {

Status PageFile::VerifyPage(PageId id) const {
  Page scratch(page_size_);
  return Read(id, &scratch);
}

Status PageFile::ReadBatch(const PageId* ids, size_t count, Page* outs,
                           Status* statuses) const {
  Status first = Status::OK();
  for (size_t i = 0; i < count; ++i) {
    statuses[i] = Read(ids[i], &outs[i]);
    if (first.ok() && !statuses[i].ok()) first = statuses[i];
  }
  return first;
}

uint64_t MemPageFile::NumPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pages_.size();
}

StatusOr<PageId> MemPageFile::Allocate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_.emplace_back(page_size_, 0);
  return PageId{pages_.size() - 1};
}

Status MemPageFile::Read(PageId id, Page* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  if (out->size() != page_size_) *out = Page(page_size_);
  std::memcpy(out->data(), pages_[id].data(), page_size_);
  return Status::OK();
}

Status MemPageFile::Write(PageId id, const Page& page) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  std::memcpy(pages_[id].data(), page.data(), page_size_);
  return Status::OK();
}

DiskPageFile::DiskPageFile(std::FILE* f, uint32_t page_size,
                           uint64_t num_pages, uint32_t epoch)
    : PageFile(page_size), file_(f), num_pages_(num_pages), epoch_(epoch) {}

DiskPageFile::~DiskPageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<DiskPageFile>> DiskPageFile::Create(
    const std::string& path, uint32_t page_size, uint32_t epoch) {
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot create " + path);
  }
  return std::unique_ptr<DiskPageFile>(
      new DiskPageFile(f, page_size, 0, epoch));
}

StatusOr<std::unique_ptr<DiskPageFile>> DiskPageFile::Open(
    const std::string& path, uint32_t page_size, uint32_t epoch) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed on " + path);
  }
  const long length = std::ftell(f);
  const uint64_t slot = uint64_t{kPageHeaderSize} + page_size;
  if (length < 0 || static_cast<uint64_t>(length) % slot != 0) {
    std::fclose(f);
    return Status::Corruption(
        "file length not a multiple of the page slot size: " + path);
  }
  return std::unique_ptr<DiskPageFile>(new DiskPageFile(
      f, page_size, static_cast<uint64_t>(length) / slot, epoch));
}

Status DiskPageFile::WriteSlot(PageId id, const uint8_t* payload) {
  std::vector<uint8_t> slot(SlotSize());
  std::memcpy(slot.data() + 4, &epoch_, sizeof(epoch_));
  std::memcpy(slot.data() + 8, &id, sizeof(id));
  std::memcpy(slot.data() + kPageHeaderSize, payload, page_size_);
  const uint32_t crc =
      MaskCrc(Crc32c(slot.data() + 4, slot.size() - 4));
  std::memcpy(slot.data(), &crc, sizeof(crc));
  if (std::fseek(file_, static_cast<long>(id * SlotSize()), SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), file_) != slot.size()) {
    return Status::IOError("write failed for page " + std::to_string(id));
  }
  return Status::OK();
}

StatusOr<PageId> DiskPageFile::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  const std::vector<uint8_t> zeros(page_size_, 0);
  FIELDDB_RETURN_IF_ERROR(WriteSlot(id, zeros.data()));
  num_pages_.store(id + 1, std::memory_order_release);
  return id;
}

Status DiskPageFile::VerifySlot(PageId id, const uint8_t* slot,
                                Page* out) const {
  static Counter* const corrupt_reads =
      MetricsRegistry::Default().GetCounter("storage.file.corrupt_page_reads");
  uint32_t stored_crc = 0;
  uint32_t stored_epoch = 0;
  uint64_t stored_id = 0;
  std::memcpy(&stored_crc, slot, sizeof(stored_crc));
  std::memcpy(&stored_epoch, slot + 4, sizeof(stored_epoch));
  std::memcpy(&stored_id, slot + 8, sizeof(stored_id));
  const uint32_t actual = Crc32c(slot + 4, SlotSize() - 4);
  if (UnmaskCrc(stored_crc) != actual) {
    corrupt_reads->Increment();
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id));
  }
  if (stored_id != id) {
    corrupt_reads->Increment();
    return Status::Corruption("misdirected page: slot " + std::to_string(id) +
                              " holds page " + std::to_string(stored_id));
  }
  if (epoch_ != 0 && stored_epoch != epoch_) {
    corrupt_reads->Increment();
    return Status::Corruption(
        "epoch mismatch on page " + std::to_string(id) + ": stored " +
        std::to_string(stored_epoch) + ", expected " + std::to_string(epoch_));
  }
  if (out->size() != page_size_) *out = Page(page_size_);
  std::memcpy(out->data(), slot + kPageHeaderSize, page_size_);
  return Status::OK();
}

Status DiskPageFile::Read(PageId id, Page* out) const {
  if (id >= NumPages()) {
    return Status::OutOfRange("page id out of range");
  }
  std::vector<uint8_t> slot(SlotSize());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::fseek(file_, static_cast<long>(id * SlotSize()), SEEK_SET) != 0 ||
        std::fread(slot.data(), 1, slot.size(), file_) != slot.size()) {
      return Status::IOError("read failed for page " + std::to_string(id));
    }
  }
  return VerifySlot(id, slot.data(), out);
}

AsyncIoBackend* DiskPageFile::BackendLocked() const {
  if (backend_ == nullptr) backend_ = AsyncIoBackend::Create();
  return backend_.get();
}

const char* DiskPageFile::async_backend_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return BackendLocked()->name();
}

Status DiskPageFile::ReadBatch(const PageId* ids, size_t count, Page* outs,
                               Status* statuses) const {
  if (count == 0) return Status::OK();
  const uint64_t num_pages = NumPages();
  AsyncIoBackend* backend = nullptr;
  {
    // One flush up front: the batch reads through the fd (positioned
    // reads), which does not see bytes still sitting in the stdio
    // buffer. Allocate/Write complete before any read of their page can
    // be requested, so flushing here is sufficient coherence.
    std::lock_guard<std::mutex> lock(mu_);
    backend = BackendLocked();
    std::fflush(file_);
  }

  std::vector<SlotRead> reqs;
  std::vector<size_t> req_index;  // reqs[k] serves ids[req_index[k]]
  reqs.reserve(count);
  req_index.reserve(count);
  std::vector<uint8_t> slots(count * SlotSize());
  for (size_t i = 0; i < count; ++i) {
    if (ids[i] >= num_pages) {
      statuses[i] = Status::OutOfRange("page id out of range");
      continue;
    }
    SlotRead req;
    req.offset = ids[i] * SlotSize();
    req.buf = slots.data() + i * SlotSize();
    req.len = SlotSize();
    reqs.push_back(req);
    req_index.push_back(i);
  }
  if (!reqs.empty()) {
    backend->ReadVectored(::fileno(file_), reqs.data(), reqs.size());
  }
  for (size_t k = 0; k < reqs.size(); ++k) {
    const size_t i = req_index[k];
    statuses[i] = reqs[k].status.ok()
                      ? VerifySlot(ids[i], reqs[k].buf, &outs[i])
                      : reqs[k].status;
  }
  Status first = Status::OK();
  for (size_t i = 0; i < count; ++i) {
    if (!statuses[i].ok()) {
      first = statuses[i];
      break;
    }
  }
  return first;
}

Status DiskPageFile::Write(PageId id, const Page& page) {
  if (id >= NumPages()) {
    return Status::OutOfRange("page id out of range");
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  FIELDDB_RETURN_IF_ERROR(WriteSlot(id, page.data()));
  std::fflush(file_);
  return Status::OK();
}

Status DiskPageFile::Sync() {
  // fsync is the single most expensive storage call; always worth a
  // span so checkpoint/commit stalls are visible in the trace.
  TraceScope span("file.sync", "pool");
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed");
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed");
  }
  return Status::OK();
}

Status DiskPageFile::CorruptRawForTest(PageId id, uint32_t offset,
                                       uint8_t xor_mask) {
  if (id >= NumPages() || offset >= SlotSize()) {
    return Status::OutOfRange("corrupt target out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const long pos = static_cast<long>(id * SlotSize() + offset);
  uint8_t byte = 0;
  if (std::fseek(file_, pos, SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, file_) != 1) {
    return Status::IOError("corrupt-for-test read failed");
  }
  byte ^= xor_mask;
  if (std::fseek(file_, pos, SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, file_) != 1) {
    return Status::IOError("corrupt-for-test write failed");
  }
  std::fflush(file_);
  return Status::OK();
}

}  // namespace fielddb

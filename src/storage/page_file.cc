#include "storage/page_file.h"

#include <cstring>

namespace fielddb {

StatusOr<PageId> MemPageFile::Allocate() {
  pages_.emplace_back(page_size_, 0);
  return PageId{pages_.size() - 1};
}

Status MemPageFile::Read(PageId id, Page* out) const {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  if (out->size() != page_size_) *out = Page(page_size_);
  std::memcpy(out->data(), pages_[id].data(), page_size_);
  return Status::OK();
}

Status MemPageFile::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " >= " + std::to_string(pages_.size()));
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  std::memcpy(pages_[id].data(), page.data(), page_size_);
  return Status::OK();
}

DiskPageFile::~DiskPageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<DiskPageFile>> DiskPageFile::Create(
    const std::string& path, uint32_t page_size) {
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot create " + path);
  }
  return std::unique_ptr<DiskPageFile>(new DiskPageFile(f, page_size, 0));
}

StatusOr<std::unique_ptr<DiskPageFile>> DiskPageFile::Open(
    const std::string& path, uint32_t page_size) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IOError("seek failed on " + path);
  }
  const long length = std::ftell(f);
  if (length < 0 || static_cast<uint64_t>(length) % page_size != 0) {
    std::fclose(f);
    return Status::Corruption("file length not a multiple of page size: " +
                              path);
  }
  return std::unique_ptr<DiskPageFile>(
      new DiskPageFile(f, page_size, static_cast<uint64_t>(length) / page_size));
}

StatusOr<PageId> DiskPageFile::Allocate() {
  const PageId id = num_pages_;
  const std::vector<uint8_t> zeros(page_size_, 0);
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("allocate failed");
  }
  ++num_pages_;
  return id;
}

Status DiskPageFile::Read(PageId id, Page* out) const {
  if (id >= num_pages_) {
    return Status::OutOfRange("page id out of range");
  }
  if (out->size() != page_size_) *out = Page(page_size_);
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0 ||
      std::fread(out->data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("read failed");
  }
  return Status::OK();
}

Status DiskPageFile::Write(PageId id, const Page& page) {
  if (id >= num_pages_) {
    return Status::OutOfRange("page id out of range");
  }
  if (page.size() != page_size_) {
    return Status::InvalidArgument("page size mismatch");
  }
  if (std::fseek(file_, static_cast<long>(id * page_size_), SEEK_SET) != 0 ||
      std::fwrite(page.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("write failed");
  }
  std::fflush(file_);
  return Status::OK();
}

}  // namespace fielddb

#ifndef FIELDDB_STORAGE_PAGE_H_
#define FIELDDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace fielddb {

/// Default page size (bytes). The paper's experiments use 4 KB pages
/// (Section 4); the ablation bench sweeps other sizes.
inline constexpr uint32_t kDefaultPageSize = 4096;

/// Identifies a page within a PageFile. Page ids are dense, starting at 0.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// A fixed-size block of bytes — the unit of I/O and of cost accounting
/// throughout the library. Pages are raw byte containers; callers impose
/// structure (R*-tree nodes, cell-store slots) on top.
class Page {
 public:
  explicit Page(uint32_t size = kDefaultPageSize) : data_(size, 0) {}

  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }
  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }

  /// Copies `n` bytes from `src` into the page at `offset`.
  /// The caller must ensure offset + n <= size().
  void Write(uint32_t offset, const void* src, uint32_t n) {
    std::memcpy(data_.data() + offset, src, n);
  }

  /// Copies `n` bytes from the page at `offset` into `dst`.
  void Read(uint32_t offset, void* dst, uint32_t n) const {
    std::memcpy(dst, data_.data() + offset, n);
  }

  /// Typed helpers for fixed-layout headers.
  template <typename T>
  void WriteAt(uint32_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(offset, &v, sizeof(T));
  }

  template <typename T>
  T ReadAt(uint32_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    Read(offset, &v, sizeof(T));
    return v;
  }

  void Zero() { std::fill(data_.begin(), data_.end(), 0); }

 private:
  std::vector<uint8_t> data_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_PAGE_H_

#include "storage/crc32c.h"

#include <array>

namespace fielddb {

namespace {

// Reflected CRC-32C lookup table, generated at static-init time.
std::array<uint32_t, 256> MakeTable() {
  constexpr uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace fielddb

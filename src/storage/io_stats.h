#ifndef FIELDDB_STORAGE_IO_STATS_H_
#define FIELDDB_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace fielddb {

/// I/O counters accumulated by a BufferPool. "Logical" reads count every
/// page access; "physical" reads count buffer-pool misses (what an actual
/// disk would have served). All figure benches report both alongside wall
/// time, since the paper's curves are driven by page accesses.
struct IoStats {
  uint64_t logical_reads = 0;
  uint64_t physical_reads = 0;
  /// Physical reads whose page id directly follows the previous physical
  /// read (what a spinning disk serves without a seek). The complement
  /// (physical_reads - sequential_reads) pays a seek; this split is what
  /// lets the harness model the paper's 2002 disk (see bench/harness.cc).
  uint64_t sequential_reads = 0;
  uint64_t writes = 0;
  uint64_t evictions = 0;
  /// Transient read faults absorbed by the pool's bounded retry loop
  /// (each retry that was needed counts once).
  uint64_t read_retries = 0;
  /// Reads that still failed after retries (I/O errors or corruption).
  uint64_t failed_reads = 0;
  /// Write-backs that failed (the dirty frame stays resident).
  uint64_t failed_writes = 0;

  uint64_t random_reads() const { return physical_reads - sequential_reads; }

  void Reset() { *this = IoStats{}; }

  /// Field-wise accumulation. QueryStats::Accumulate and the trace/bench
  /// aggregators all go through this, so adding a counter here is the
  /// single place it must be added to stay in every rollup.
  IoStats& operator+=(const IoStats& o) {
    logical_reads += o.logical_reads;
    physical_reads += o.physical_reads;
    sequential_reads += o.sequential_reads;
    writes += o.writes;
    evictions += o.evictions;
    read_retries += o.read_retries;
    failed_reads += o.failed_reads;
    failed_writes += o.failed_writes;
    return *this;
  }

  IoStats operator-(const IoStats& o) const {
    return IoStats{logical_reads - o.logical_reads,
                   physical_reads - o.physical_reads,
                   sequential_reads - o.sequential_reads,
                   writes - o.writes,
                   evictions - o.evictions,
                   read_retries - o.read_retries,
                   failed_reads - o.failed_reads,
                   failed_writes - o.failed_writes};
  }
};

/// The pool-wide mirror of IoStats, updatable by concurrent recorders
/// (one atomic RMW per event, all relaxed — counters are independent, so
/// a snapshot taken mid-traffic may be internally skewed by in-flight
/// events but every counter is individually exact).
struct AtomicIoStats {
  std::atomic<uint64_t> logical_reads{0};
  std::atomic<uint64_t> physical_reads{0};
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> read_retries{0};
  std::atomic<uint64_t> failed_reads{0};
  std::atomic<uint64_t> failed_writes{0};

  IoStats Snapshot() const {
    IoStats s;
    s.logical_reads = logical_reads.load(std::memory_order_relaxed);
    s.physical_reads = physical_reads.load(std::memory_order_relaxed);
    s.sequential_reads = sequential_reads.load(std::memory_order_relaxed);
    s.writes = writes.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.read_retries = read_retries.load(std::memory_order_relaxed);
    s.failed_reads = failed_reads.load(std::memory_order_relaxed);
    s.failed_writes = failed_writes.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    logical_reads.store(0, std::memory_order_relaxed);
    physical_reads.store(0, std::memory_order_relaxed);
    sequential_reads.store(0, std::memory_order_relaxed);
    writes.store(0, std::memory_order_relaxed);
    evictions.store(0, std::memory_order_relaxed);
    read_retries.store(0, std::memory_order_relaxed);
    failed_reads.store(0, std::memory_order_relaxed);
    failed_writes.store(0, std::memory_order_relaxed);
  }
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_IO_STATS_H_

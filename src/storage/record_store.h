#ifndef FIELDDB_STORAGE_RECORD_STORE_H_
#define FIELDDB_STORAGE_RECORD_STORE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fielddb {

/// Fixed-size records packed into consecutive pages of a buffer pool —
/// the generic sibling of CellStore used by the vector- and volume-field
/// extensions. Records are stored in the order given at Build time;
/// callers pass them pre-sorted (e.g. by Hilbert value) to get physical
/// clustering.
template <typename T>
class RecordStore {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "records are raw page bytes");

  /// Writes `records` sequentially into freshly allocated pages.
  static StatusOr<RecordStore> Build(BufferPool* pool,
                                     const std::vector<T>& records) {
    const uint32_t per_page = pool->file()->page_size() /
                              static_cast<uint32_t>(sizeof(T));
    if (per_page == 0) {
      return Status::InvalidArgument("page too small for a record");
    }
    PageId first_page = kInvalidPageId;
    PinnedPage pin;
    for (uint64_t pos = 0; pos < records.size(); ++pos) {
      const uint32_t slot = static_cast<uint32_t>(pos % per_page);
      if (slot == 0) {
        StatusOr<PageId> id = pool->Allocate(&pin);
        if (!id.ok()) return id.status();
        if (first_page == kInvalidPageId) first_page = *id;
      }
      pin.MutablePage().Write(slot * sizeof(T), &records[pos], sizeof(T));
    }
    pin.Release();
    if (records.empty()) {
      StatusOr<PageId> id = pool->Allocate(&pin);
      if (!id.ok()) return id.status();
      first_page = *id;
    }
    return RecordStore(pool, first_page, records.size(), per_page);
  }

  /// Re-attaches a store persisted by Save against the on-disk pages:
  /// the catalog records `first_page` and `num_records`; the layout is
  /// a pure function of those plus the page size.
  static StatusOr<RecordStore> Attach(BufferPool* pool, PageId first_page,
                                      uint64_t num_records) {
    const uint32_t per_page = pool->file()->page_size() /
                              static_cast<uint32_t>(sizeof(T));
    if (per_page == 0) {
      return Status::InvalidArgument("page too small for a record");
    }
    return RecordStore(pool, first_page, num_records, per_page);
  }

  RecordStore(RecordStore&&) = default;
  RecordStore& operator=(RecordStore&&) = default;
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  PageId first_page() const { return first_page_; }
  uint64_t size() const { return num_records_; }
  uint32_t records_per_page() const { return per_page_; }
  uint64_t num_pages() const {
    return num_records_ == 0 ? 1
                             : (num_records_ + per_page_ - 1) / per_page_;
  }

  Status Get(uint64_t pos, T* out) const {
    if (pos >= num_records_) {
      return Status::OutOfRange("record position out of range");
    }
    PinnedPage pin;
    FIELDDB_RETURN_IF_ERROR(
        pool_->Fetch(first_page_ + pos / per_page_, &pin));
    pin.page().Read(static_cast<uint32_t>(pos % per_page_) * sizeof(T),
                    out, sizeof(T));
    return Status::OK();
  }

  Status Put(uint64_t pos, const T& record) {
    if (pos >= num_records_) {
      return Status::OutOfRange("record position out of range");
    }
    PinnedPage pin;
    FIELDDB_RETURN_IF_ERROR(
        pool_->Fetch(first_page_ + pos / per_page_, &pin));
    pin.MutablePage().Write(
        static_cast<uint32_t>(pos % per_page_) * sizeof(T), &record,
        sizeof(T));
    return Status::OK();
  }

  /// Visits positions [begin, end), touching each page once. The visitor
  /// may return false to stop early.
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<bool(uint64_t, const T&)>& visit) const {
    if (begin > end || end > num_records_) {
      return Status::OutOfRange("scan range out of bounds");
    }
    T record;
    uint64_t pos = begin;
    while (pos < end) {
      PinnedPage pin;
      FIELDDB_RETURN_IF_ERROR(
          pool_->Fetch(first_page_ + pos / per_page_, &pin));
      const uint64_t page_end =
          std::min<uint64_t>(end, (pos / per_page_ + 1) * per_page_);
      for (; pos < page_end; ++pos) {
        pin.page().Read(
            static_cast<uint32_t>(pos % per_page_) * sizeof(T), &record,
            sizeof(T));
        if (!visit(pos, record)) return Status::OK();
      }
    }
    return Status::OK();
  }

 private:
  RecordStore(BufferPool* pool, PageId first_page, uint64_t num_records,
              uint32_t per_page)
      : pool_(pool), first_page_(first_page), num_records_(num_records),
        per_page_(per_page) {}

  BufferPool* pool_;
  PageId first_page_;
  uint64_t num_records_;
  uint32_t per_page_;
};

/// Streaming counterpart of RecordStore::Build for producers that never
/// hold all records in RAM (the external-sort merge): records arrive one
/// at a time via Append and Finish() returns a store whose page layout is
/// byte-identical to Build over the same sequence.
template <typename T>
class RecordStoreAppender {
 public:
  explicit RecordStoreAppender(BufferPool* pool) : pool_(pool) {
    per_page_ = pool->file()->page_size() /
                static_cast<uint32_t>(sizeof(T));
  }

  RecordStoreAppender(const RecordStoreAppender&) = delete;
  RecordStoreAppender& operator=(const RecordStoreAppender&) = delete;

  Status Append(const T& record) {
    if (per_page_ == 0) {
      return Status::InvalidArgument("page too small for a record");
    }
    const uint32_t slot = static_cast<uint32_t>(num_records_ % per_page_);
    if (slot == 0) {
      StatusOr<PageId> id = pool_->Allocate(&pin_);
      if (!id.ok()) return id.status();
      if (first_page_ == kInvalidPageId) first_page_ = *id;
    }
    pin_.MutablePage().Write(slot * sizeof(T), &record, sizeof(T));
    ++num_records_;
    return Status::OK();
  }

  uint64_t size() const { return num_records_; }

  StatusOr<RecordStore<T>> Finish() {
    if (per_page_ == 0) {
      return Status::InvalidArgument("page too small for a record");
    }
    pin_.Release();
    if (num_records_ == 0) {
      StatusOr<PageId> id = pool_->Allocate(&pin_);
      if (!id.ok()) return id.status();
      first_page_ = *id;
      pin_.Release();
    }
    return RecordStore<T>::Attach(pool_, first_page_, num_records_);
  }

 private:
  BufferPool* pool_;
  uint32_t per_page_ = 0;
  PageId first_page_ = kInvalidPageId;
  uint64_t num_records_ = 0;
  PinnedPage pin_;
};

}  // namespace fielddb

#endif  // FIELDDB_STORAGE_RECORD_STORE_H_

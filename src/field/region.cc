#include "field/region.h"

#include <cstdio>

namespace fielddb {

double Region::TotalArea() const {
  double area = 0.0;
  for (const ConvexPolygon& p : pieces) area += p.Area();
  return area;
}

Rect2 Region::BoundingBox() const {
  Rect2 r = Rect2::Empty();
  for (const ConvexPolygon& p : pieces) r.Extend(p.BoundingBox());
  return r;
}

bool WriteSvg(const char* path, const Rect2& viewport,
              const std::vector<SvgLayer>& layers, int pixel_width) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const double w = viewport.Width();
  const double h = viewport.Height();
  if (w <= 0 || h <= 0) {
    std::fclose(f);
    return false;
  }
  const double scale = pixel_width / w;
  const int pixel_height = static_cast<int>(h * scale + 0.5);
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
               "height=\"%d\" viewBox=\"0 0 %d %d\">\n",
               pixel_width, pixel_height, pixel_width, pixel_height);
  for (const SvgLayer& layer : layers) {
    for (const ConvexPolygon& poly : layer.polygons) {
      if (poly.vertices.empty()) continue;
      std::fprintf(f, "<polygon points=\"");
      for (const Point2& p : poly.vertices) {
        // Flip y: SVG's origin is top-left.
        std::fprintf(f, "%.2f,%.2f ", (p.x - viewport.lo.x) * scale,
                     (viewport.hi.y - p.y) * scale);
      }
      std::fprintf(f,
                   "\" fill=\"%s\" fill-opacity=\"%.2f\" stroke=\"%s\" "
                   "stroke-width=\"0.5\"/>\n",
                   layer.fill, layer.fill_opacity, layer.stroke);
    }
  }
  std::fprintf(f, "</svg>\n");
  std::fclose(f);
  return true;
}

}  // namespace fielddb

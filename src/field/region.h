#ifndef FIELDDB_FIELD_REGION_H_
#define FIELDDB_FIELD_REGION_H_

#include <vector>

#include "common/geometry.h"

namespace fielddb {

/// The answer of a field value query: a set of convex polygon pieces
/// (one or more per contributing cell) whose union is the exact region
/// where the query condition holds under the piecewise-linear
/// interpretation of the field.
struct Region {
  std::vector<ConvexPolygon> pieces;

  bool IsEmpty() const { return pieces.empty(); }
  size_t NumPieces() const { return pieces.size(); }

  /// Sum of piece areas. Pieces produced by the estimation step do not
  /// overlap (each lives inside its own cell / sub-triangle), so this is
  /// the area of the union.
  double TotalArea() const;

  Rect2 BoundingBox() const;

  void Append(const Region& other) {
    pieces.insert(pieces.end(), other.pieces.begin(), other.pieces.end());
  }
};

/// Writes the region (plus optional context polygons) as a standalone SVG
/// file, used by the examples to visualize answers and subfield maps.
/// Returns false if the file cannot be written.
struct SvgLayer {
  std::vector<ConvexPolygon> polygons;
  const char* fill = "#4477aa";
  const char* stroke = "#223355";
  double fill_opacity = 0.6;
};

bool WriteSvg(const char* path, const Rect2& viewport,
              const std::vector<SvgLayer>& layers, int pixel_width = 800);

}  // namespace fielddb

#endif  // FIELDDB_FIELD_REGION_H_

#ifndef FIELDDB_FIELD_ISOLINE_H_
#define FIELDDB_FIELD_ISOLINE_H_

#include <utility>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "field/cell.h"

namespace fielddb {

/// A line segment of an isoline within one cell.
using IsoSegment = std::pair<Point2, Point2>;

/// An assembled isoline: the curves where F(p) == level. Open polylines
/// end on the field boundary; closed ones loop around extrema.
struct Isoline {
  std::vector<std::vector<Point2>> polylines;

  double TotalLength() const;
  size_t NumSegments() const;
};

/// Emits the segments where the (piecewise-linear) interpolant of `cell`
/// equals `level` — the per-cell step of isoline extraction from TINs
/// (van Kreveld [24], the exact-value specialization of the estimation
/// step). Quad cells use the same 4-triangle fan as CellIsoband, so
/// isolines and isobands are consistent. Cells that are constant at
/// exactly `level` contribute no segments (the degenerate flat region is
/// an area, reported by CellIsoband instead). Returns the number of
/// segments appended.
StatusOr<size_t> CellIsolineSegments(const CellRecord& cell, double level,
                                     std::vector<IsoSegment>* out);

/// Stitches per-cell segments into polylines by matching endpoints
/// (quantized to `tolerance`). Segments from adjacent cells share edge
/// crossing points exactly in our grids/TINs, so the default tolerance
/// only absorbs floating-point noise.
Isoline AssembleIsoline(const std::vector<IsoSegment>& segments,
                        double tolerance = 1e-9);

}  // namespace fielddb

#endif  // FIELDDB_FIELD_ISOLINE_H_

#include "field/interpolation.h"

#include <cmath>

namespace fielddb {

bool CellContains(const CellRecord& cell, Point2 p) {
  if (cell.num_vertices == 3) {
    Triangle2 t{{cell.Vertex(0), cell.Vertex(1), cell.Vertex(2)}};
    return t.Contains(p);
  }
  if (cell.num_vertices == 4) {
    return cell.Bounds().Contains(p);
  }
  return false;
}

StatusOr<double> InterpolateCell(const CellRecord& cell, Point2 p) {
  if (!CellContains(cell, p)) {
    return Status::OutOfRange("point not inside cell");
  }
  if (cell.num_vertices == 3) {
    Triangle2 t{{cell.Vertex(0), cell.Vertex(1), cell.Vertex(2)}};
    const std::array<double, 3> l = t.Barycentric(p);
    if (std::isnan(l[0])) {
      return Status::InvalidArgument("degenerate triangle");
    }
    return l[0] * cell.w[0] + l[1] * cell.w[1] + l[2] * cell.w[2];
  }
  if (cell.num_vertices == 4) {
    const Rect2 r = cell.Bounds();
    const double dx = r.Width();
    const double dy = r.Height();
    if (dx <= 0 || dy <= 0) {
      return Status::InvalidArgument("degenerate quad");
    }
    const double u = (p.x - r.lo.x) / dx;
    const double v = (p.y - r.lo.y) / dy;
    // Corners: w[0]=ll, w[1]=lr, w[2]=ur, w[3]=ul.
    const double bottom = cell.w[0] * (1 - u) + cell.w[1] * u;
    const double top = cell.w[3] * (1 - u) + cell.w[2] * u;
    return bottom * (1 - v) + top * v;
  }
  return Status::InvalidArgument("unsupported cell arity");
}

StatusOr<LinearCoeffs> FitTrianglePlane(Point2 a, double wa, Point2 b,
                                        double wb, Point2 c, double wc) {
  const double denom = Cross(b - a, c - a);
  if (std::abs(denom) < kGeomEpsilon * kGeomEpsilon) {
    return Status::InvalidArgument("degenerate triangle");
  }
  LinearCoeffs lc;
  lc.gx = ((wb - wa) * (c.y - a.y) - (wc - wa) * (b.y - a.y)) / denom;
  lc.gy = ((wc - wa) * (b.x - a.x) - (wb - wa) * (c.x - a.x)) / denom;
  lc.c = wa - lc.gx * a.x - lc.gy * a.y;
  return lc;
}

}  // namespace fielddb

#include "field/isoband.h"

#include "field/interpolation.h"

namespace fielddb {

namespace {

// Clips one linearly-interpolated triangle against the band
// [q.min, q.max] and appends the surviving piece (if any).
Status ClipTriangle(Point2 a, double wa, Point2 b, double wb, Point2 c,
                    double wc, const ValueInterval& q, Region* out,
                    size_t* appended) {
  // Quick reject: the triangle's own interval misses the band.
  ValueInterval iv = ValueInterval::Empty();
  iv.Extend(wa);
  iv.Extend(wb);
  iv.Extend(wc);
  if (!iv.Intersects(q)) return Status::OK();

  StatusOr<LinearCoeffs> plane = FitTrianglePlane(a, wa, b, wb, c, wc);
  if (!plane.ok()) return plane.status();

  ConvexPolygon poly = PolygonFromTriangle(Triangle2{{a, b, c}});
  // w(p) >= q.min  <=>  gx*x + gy*y + (c - q.min) >= 0
  poly = ClipHalfPlane(poly, plane->gx, plane->gy, plane->c - q.min);
  // w(p) <= q.max  <=>  -gx*x - gy*y + (q.max - c) >= 0
  poly = ClipHalfPlane(poly, -plane->gx, -plane->gy, q.max - plane->c);
  if (!poly.IsEmpty()) {
    out->pieces.push_back(std::move(poly));
    ++*appended;
  }
  return Status::OK();
}

}  // namespace

StatusOr<size_t> CellIsoband(const CellRecord& cell, const ValueInterval& q,
                             Region* out) {
  if (q.IsEmpty()) {
    return Status::InvalidArgument("empty query interval");
  }
  size_t appended = 0;
  if (!cell.Interval().Intersects(q)) return appended;

  if (cell.num_vertices == 3) {
    FIELDDB_RETURN_IF_ERROR(ClipTriangle(cell.Vertex(0), cell.w[0],
                                         cell.Vertex(1), cell.w[1],
                                         cell.Vertex(2), cell.w[2], q, out,
                                         &appended));
    return appended;
  }
  if (cell.num_vertices == 4) {
    const Point2 center = cell.Bounds().Center();
    const double wc =
        (cell.w[0] + cell.w[1] + cell.w[2] + cell.w[3]) / 4.0;
    for (int i = 0; i < 4; ++i) {
      const int j = (i + 1) % 4;
      FIELDDB_RETURN_IF_ERROR(ClipTriangle(cell.Vertex(i), cell.w[i],
                                           cell.Vertex(j), cell.w[j], center,
                                           wc, q, out, &appended));
    }
    return appended;
  }
  return Status::InvalidArgument("unsupported cell arity");
}

}  // namespace fielddb

#ifndef FIELDDB_FIELD_GRID_FIELD_H_
#define FIELDDB_FIELD_GRID_FIELD_H_

#include <vector>

#include "field/field.h"

namespace fielddb {

/// A DEM-style grid field: `cols` x `rows` rectangular cells over a
/// rectangular domain, with samples at the (cols+1) x (rows+1) grid
/// vertices and bilinear interpolation inside each cell (the "DEM for a
/// continuous field" of the paper's Fig. 1, as opposed to the raster DEM
/// with one value per cell).
class GridField final : public Field {
 public:
  /// `samples` holds (cols+1)*(rows+1) values in row-major order
  /// (index j*(cols+1)+i for vertex column i, row j).
  static StatusOr<GridField> Create(uint32_t cols, uint32_t rows,
                                    const Rect2& domain,
                                    std::vector<double> samples);

  CellId NumCells() const override { return cols_ * rows_; }
  CellRecord GetCell(CellId id) const override;
  Rect2 Domain() const override { return domain_; }
  StatusOr<CellId> FindCell(Point2 p) const override;
  ValueInterval ValueRange() const override { return value_range_; }

  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }

  /// Sample value at vertex (i, j), i <= cols, j <= rows.
  double SampleAt(uint32_t i, uint32_t j) const {
    return samples_[static_cast<size_t>(j) * (cols_ + 1) + i];
  }

  /// Cell id of grid cell (ci, cj); ci < cols, cj < rows.
  CellId CellIdAt(uint32_t ci, uint32_t cj) const {
    return cj * cols_ + ci;
  }

 private:
  GridField(uint32_t cols, uint32_t rows, const Rect2& domain,
            std::vector<double> samples);

  uint32_t cols_;
  uint32_t rows_;
  Rect2 domain_;
  std::vector<double> samples_;
  ValueInterval value_range_;
};

}  // namespace fielddb

#endif  // FIELDDB_FIELD_GRID_FIELD_H_

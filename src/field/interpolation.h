#ifndef FIELDDB_FIELD_INTERPOLATION_H_
#define FIELDDB_FIELD_INTERPOLATION_H_

#include "common/geometry.h"
#include "common/status.h"
#include "field/cell.h"

namespace fielddb {

/// True when `p` lies inside (or on the boundary of) `cell`.
bool CellContains(const CellRecord& cell, Point2 p);

/// Interpolates the field value at `p`, which must lie inside the cell
/// (returns OutOfRange otherwise): barycentric for triangles, bilinear for
/// quads — the "simple linear interpolation" of the paper's experiments.
StatusOr<double> InterpolateCell(const CellRecord& cell, Point2 p);

/// Coefficients of the affine function w(p) = gx*x + gy*y + c through a
/// triangle's three sample points.
struct LinearCoeffs {
  double gx = 0.0;
  double gy = 0.0;
  double c = 0.0;

  double Eval(Point2 p) const { return gx * p.x + gy * p.y + c; }
};

/// Fits the plane through the triangle's vertices. Degenerate triangles
/// (zero area) yield InvalidArgument.
StatusOr<LinearCoeffs> FitTrianglePlane(Point2 a, double wa, Point2 b,
                                        double wb, Point2 c, double wc);

}  // namespace fielddb

#endif  // FIELDDB_FIELD_INTERPOLATION_H_

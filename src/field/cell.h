#ifndef FIELDDB_FIELD_CELL_H_
#define FIELDDB_FIELD_CELL_H_

#include <cstdint>

#include "common/geometry.h"
#include "common/interval.h"

namespace fielddb {

/// Index of a cell within its field (also used as the logical key carried
/// through indexes and cell stores).
using CellId = uint32_t;

inline constexpr CellId kInvalidCellId = ~CellId{0};

/// A self-contained, fixed-size cell record: the unit stored in cell
/// stores and interpolated during the estimation step. Carries the cell's
/// sample points (vertices + field values). Supports the two cell shapes
/// of the paper's experiments:
///  - 3 vertices: TIN triangle, linear (barycentric) interpolation;
///  - 4 vertices: DEM grid quad (order: ll, lr, ur, ul), bilinear.
///
/// Both interpolants attain their extrema at the vertices, so the cell's
/// value interval is the min/max over vertex values (the paper's caveat
/// about interpolation functions introducing new extreme points does not
/// bite here; an interpolant that did would need to extend Interval()).
struct CellRecord {
  uint32_t num_vertices = 0;
  CellId id = kInvalidCellId;
  double x[4] = {0, 0, 0, 0};
  double y[4] = {0, 0, 0, 0};
  double w[4] = {0, 0, 0, 0};

  static CellRecord Triangle(CellId id, Point2 a, double wa, Point2 b,
                             double wb, Point2 c, double wc) {
    CellRecord r;
    r.num_vertices = 3;
    r.id = id;
    r.x[0] = a.x; r.y[0] = a.y; r.w[0] = wa;
    r.x[1] = b.x; r.y[1] = b.y; r.w[1] = wb;
    r.x[2] = c.x; r.y[2] = c.y; r.w[2] = wc;
    return r;
  }

  /// Axis-aligned grid cell. Values given for the four corners:
  /// lower-left, lower-right, upper-right, upper-left.
  static CellRecord Quad(CellId id, const Rect2& rect, double w_ll,
                         double w_lr, double w_ur, double w_ul) {
    CellRecord r;
    r.num_vertices = 4;
    r.id = id;
    r.x[0] = rect.lo.x; r.y[0] = rect.lo.y; r.w[0] = w_ll;
    r.x[1] = rect.hi.x; r.y[1] = rect.lo.y; r.w[1] = w_lr;
    r.x[2] = rect.hi.x; r.y[2] = rect.hi.y; r.w[2] = w_ur;
    r.x[3] = rect.lo.x; r.y[3] = rect.hi.y; r.w[3] = w_ul;
    return r;
  }

  Point2 Vertex(int i) const { return {x[i], y[i]}; }

  /// The 1-D MBR of all explicit and implicit values inside the cell.
  ValueInterval Interval() const {
    ValueInterval iv = ValueInterval::Empty();
    for (uint32_t i = 0; i < num_vertices; ++i) iv.Extend(w[i]);
    return iv;
  }

  Rect2 Bounds() const {
    Rect2 r = Rect2::Empty();
    for (uint32_t i = 0; i < num_vertices; ++i) r.Extend(Vertex(i));
    return r;
  }

  Point2 Centroid() const {
    Point2 c{0, 0};
    for (uint32_t i = 0; i < num_vertices; ++i) {
      c.x += x[i];
      c.y += y[i];
    }
    const double n = num_vertices > 0 ? num_vertices : 1;
    return {c.x / n, c.y / n};
  }
};

static_assert(sizeof(CellRecord) == 104,
              "CellRecord layout is part of the cell-store page format");

}  // namespace fielddb

#endif  // FIELDDB_FIELD_CELL_H_

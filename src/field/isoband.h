#ifndef FIELDDB_FIELD_ISOBAND_H_
#define FIELDDB_FIELD_ISOBAND_H_

#include "common/interval.h"
#include "common/status.h"
#include "field/cell.h"
#include "field/region.h"

namespace fielddb {

/// Estimation step (paper Section 3.2, algorithm `Estimate`): the exact
/// sub-region of `cell` where wlo <= F(p) <= whi, as convex polygon
/// pieces. This is the inverse interpolation f^-1 applied to the cell's
/// sample points:
///  - triangles: the linear interpolant w(p) = g.p + c is clipped by the
///    two iso half-planes w(p) >= wlo and w(p) <= whi;
///  - grid quads: the bilinear patch is evaluated as four linear triangles
///    fanned around the cell center (whose value the bilinear interpolant
///    fixes to the corner average), each clipped as above. This is exact
///    for the piecewise-linear reading of the DEM and conservative for
///    the bilinear one.
/// Appends pieces to `*out`; returns the number of pieces appended.
StatusOr<size_t> CellIsoband(const CellRecord& cell, const ValueInterval& q,
                             Region* out);

}  // namespace fielddb

#endif  // FIELDDB_FIELD_ISOBAND_H_

#include "field/isoline.h"

#include <cmath>
#include <map>

namespace fielddb {

double Isoline::TotalLength() const {
  double length = 0.0;
  for (const auto& line : polylines) {
    for (size_t i = 1; i < line.size(); ++i) {
      length += Distance(line[i - 1], line[i]);
    }
  }
  return length;
}

size_t Isoline::NumSegments() const {
  size_t count = 0;
  for (const auto& line : polylines) {
    count += line.size() > 0 ? line.size() - 1 : 0;
  }
  return count;
}

namespace {

// Emits the crossing segment of one linear triangle, if any. The "above"
// side is w >= level (half-open so shared vertices are classified
// consistently across neighboring triangles).
void TriangleIsoSegment(Point2 a, double wa, Point2 b, double wb, Point2 c,
                        double wc, double level,
                        std::vector<IsoSegment>* out) {
  const Point2 pts[3] = {a, b, c};
  const double w[3] = {wa, wb, wc};
  bool above[3];
  int num_above = 0;
  for (int i = 0; i < 3; ++i) {
    above[i] = w[i] >= level;
    num_above += above[i];
  }
  if (num_above == 0 || num_above == 3) return;

  // Collect the two edge crossings (edges whose endpoints straddle).
  Point2 crossing[2];
  int found = 0;
  for (int i = 0; i < 3 && found < 2; ++i) {
    const int j = (i + 1) % 3;
    if (above[i] == above[j]) continue;
    const double denom = w[j] - w[i];
    // Straddling guarantees |denom| > 0.
    const double t = (level - w[i]) / denom;
    crossing[found++] = pts[i] + t * (pts[j] - pts[i]);
  }
  if (found == 2 &&
      Distance(crossing[0], crossing[1]) > kGeomEpsilon) {
    out->emplace_back(crossing[0], crossing[1]);
  }
}

}  // namespace

StatusOr<size_t> CellIsolineSegments(const CellRecord& cell, double level,
                                     std::vector<IsoSegment>* out) {
  const size_t before = out->size();
  const ValueInterval iv = cell.Interval();
  if (!iv.Contains(level)) return size_t{0};
  if (iv.Length() <= 0.0) {
    // Constant cell at the level: a flat region, not a line.
    return size_t{0};
  }

  if (cell.num_vertices == 3) {
    TriangleIsoSegment(cell.Vertex(0), cell.w[0], cell.Vertex(1),
                       cell.w[1], cell.Vertex(2), cell.w[2], level, out);
  } else if (cell.num_vertices == 4) {
    const Point2 center = cell.Bounds().Center();
    const double wc =
        (cell.w[0] + cell.w[1] + cell.w[2] + cell.w[3]) / 4.0;
    for (int i = 0; i < 4; ++i) {
      const int j = (i + 1) % 4;
      TriangleIsoSegment(cell.Vertex(i), cell.w[i], cell.Vertex(j),
                         cell.w[j], center, wc, level, out);
    }
  } else {
    return Status::InvalidArgument("unsupported cell arity");
  }
  return out->size() - before;
}

Isoline AssembleIsoline(const std::vector<IsoSegment>& segments,
                        double tolerance) {
  Isoline iso;
  if (segments.empty()) return iso;

  // Quantized endpoint -> incident segment ids.
  using Key = std::pair<int64_t, int64_t>;
  const auto key = [&](Point2 p) {
    return Key{static_cast<int64_t>(std::llround(p.x / tolerance)),
               static_cast<int64_t>(std::llround(p.y / tolerance))};
  };
  std::multimap<Key, size_t> endpoints;
  for (size_t i = 0; i < segments.size(); ++i) {
    endpoints.emplace(key(segments[i].first), i);
    endpoints.emplace(key(segments[i].second), i);
  }
  std::vector<bool> used(segments.size(), false);

  const auto next_unused_at = [&](Point2 p, size_t* seg) {
    auto [lo, hi] = endpoints.equal_range(key(p));
    for (auto it = lo; it != hi; ++it) {
      if (!used[it->second]) {
        *seg = it->second;
        return true;
      }
    }
    return false;
  };

  for (size_t start = 0; start < segments.size(); ++start) {
    if (used[start]) continue;
    used[start] = true;
    std::vector<Point2> line{segments[start].first,
                             segments[start].second};
    // Grow forward from the tail, then backward from the head.
    for (int direction = 0; direction < 2; ++direction) {
      for (;;) {
        const Point2 tip = line.back();
        size_t seg;
        if (!next_unused_at(tip, &seg)) break;
        used[seg] = true;
        const Point2 a = segments[seg].first, b = segments[seg].second;
        line.push_back(Distance(a, tip) <= Distance(b, tip) ? b : a);
      }
      std::reverse(line.begin(), line.end());
    }
    iso.polylines.push_back(std::move(line));
  }
  return iso;
}

}  // namespace fielddb

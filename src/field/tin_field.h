#ifndef FIELDDB_FIELD_TIN_FIELD_H_
#define FIELDDB_FIELD_TIN_FIELD_H_

#include <array>
#include <vector>

#include "field/field.h"

namespace fielddb {

/// A sample point of a TIN: position plus measured field value.
struct TinVertex {
  Point2 pos;
  double value = 0.0;
};

/// A triangle as indices into the vertex array.
struct TinTriangle {
  std::array<uint32_t, 3> v;
};

/// A Triangulated Irregular Network field with linear (barycentric)
/// interpolation inside each triangle — the representation of the paper's
/// urban-noise experiment (Fig. 8b).
class TinField final : public Field {
 public:
  static StatusOr<TinField> Create(std::vector<TinVertex> vertices,
                                   std::vector<TinTriangle> triangles);

  CellId NumCells() const override {
    return static_cast<CellId>(triangles_.size());
  }
  CellRecord GetCell(CellId id) const override;
  Rect2 Domain() const override { return domain_; }
  ValueInterval ValueRange() const override { return value_range_; }
  // FindCell: base-class scan. FieldDatabase builds a 2-D R*-tree over
  // cell MBRs for indexed Q1 lookups on TINs.

  const std::vector<TinVertex>& vertices() const { return vertices_; }
  const std::vector<TinTriangle>& triangles() const { return triangles_; }

 private:
  TinField(std::vector<TinVertex> vertices,
           std::vector<TinTriangle> triangles);

  std::vector<TinVertex> vertices_;
  std::vector<TinTriangle> triangles_;
  Rect2 domain_;
  ValueInterval value_range_;
};

}  // namespace fielddb

#endif  // FIELDDB_FIELD_TIN_FIELD_H_

#include "field/grid_field.h"

#include <algorithm>
#include <cmath>

#include "field/interpolation.h"

namespace fielddb {

GridField::GridField(uint32_t cols, uint32_t rows, const Rect2& domain,
                     std::vector<double> samples)
    : cols_(cols), rows_(rows), domain_(domain),
      samples_(std::move(samples)) {
  value_range_ = ValueInterval::Empty();
  for (const double w : samples_) value_range_.Extend(w);
}

StatusOr<GridField> GridField::Create(uint32_t cols, uint32_t rows,
                                      const Rect2& domain,
                                      std::vector<double> samples) {
  if (cols == 0 || rows == 0) {
    return Status::InvalidArgument("grid must have at least one cell");
  }
  if (domain.IsEmpty() || domain.Width() <= 0 || domain.Height() <= 0) {
    return Status::InvalidArgument("grid domain must have positive area");
  }
  const size_t expected =
      static_cast<size_t>(cols + 1) * static_cast<size_t>(rows + 1);
  if (samples.size() != expected) {
    return Status::InvalidArgument(
        "expected " + std::to_string(expected) + " samples, got " +
        std::to_string(samples.size()));
  }
  return GridField(cols, rows, domain, std::move(samples));
}

CellRecord GridField::GetCell(CellId id) const {
  const uint32_t ci = id % cols_;
  const uint32_t cj = id / cols_;
  const double dx = domain_.Width() / cols_;
  const double dy = domain_.Height() / rows_;
  const Rect2 rect{{domain_.lo.x + ci * dx, domain_.lo.y + cj * dy},
                   {domain_.lo.x + (ci + 1) * dx, domain_.lo.y + (cj + 1) * dy}};
  return CellRecord::Quad(id, rect, SampleAt(ci, cj), SampleAt(ci + 1, cj),
                          SampleAt(ci + 1, cj + 1), SampleAt(ci, cj + 1));
}

StatusOr<CellId> GridField::FindCell(Point2 p) const {
  if (!domain_.Contains(p)) {
    return Status::NotFound("point outside field domain");
  }
  const double fx = (p.x - domain_.lo.x) / domain_.Width() * cols_;
  const double fy = (p.y - domain_.lo.y) / domain_.Height() * rows_;
  const uint32_t ci = static_cast<uint32_t>(
      std::clamp(std::floor(fx), 0.0, static_cast<double>(cols_ - 1)));
  const uint32_t cj = static_cast<uint32_t>(
      std::clamp(std::floor(fy), 0.0, static_cast<double>(rows_ - 1)));
  return CellIdAt(ci, cj);
}

}  // namespace fielddb

#ifndef FIELDDB_FIELD_FIELD_H_
#define FIELDDB_FIELD_FIELD_H_

#include <cstdint>

#include "common/geometry.h"
#include "common/interval.h"
#include "common/status.h"
#include "field/cell.h"

namespace fielddb {

/// A continuous scalar field over a 2-D domain, represented as a
/// subdivision into cells with sample points at vertices (the (C, F)
/// pair of the paper's Section 2.1, restricted to scalar values and the
/// linear-interpolation family used throughout its experiments).
class Field {
 public:
  virtual ~Field() = default;

  /// Number of cells; cell ids are [0, NumCells()).
  virtual CellId NumCells() const = 0;

  /// Materializes cell `id` as a self-contained record.
  virtual CellRecord GetCell(CellId id) const = 0;

  /// The spatial extent covered by the cells.
  virtual Rect2 Domain() const = 0;

  /// Finds the cell containing `p` (NotFound if outside the domain).
  /// Subclasses override with O(1)/indexed lookups where possible; this
  /// base implementation scans all cells.
  virtual StatusOr<CellId> FindCell(Point2 p) const;

  /// Hull of all cell value intervals — the field's value range, used to
  /// normalize query intervals and the subfield cost function.
  /// Computed by a scan; subclasses may cache.
  virtual ValueInterval ValueRange() const;

  /// Conventional Q1 query: the interpolated field value at `p`.
  StatusOr<double> ValueAt(Point2 p) const;
};

}  // namespace fielddb

#endif  // FIELDDB_FIELD_FIELD_H_

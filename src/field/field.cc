#include "field/field.h"

#include "field/interpolation.h"

namespace fielddb {

StatusOr<double> Field::ValueAt(Point2 p) const {
  StatusOr<CellId> cell_id = FindCell(p);
  if (!cell_id.ok()) return cell_id.status();
  return InterpolateCell(GetCell(*cell_id), p);
}

StatusOr<CellId> Field::FindCell(Point2 p) const {
  const CellId n = NumCells();
  for (CellId id = 0; id < n; ++id) {
    if (CellContains(GetCell(id), p)) return id;
  }
  return Status::NotFound("point outside field domain");
}

ValueInterval Field::ValueRange() const {
  ValueInterval range = ValueInterval::Empty();
  const CellId n = NumCells();
  for (CellId id = 0; id < n; ++id) {
    range.Extend(GetCell(id).Interval());
  }
  return range;
}

}  // namespace fielddb

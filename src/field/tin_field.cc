#include "field/tin_field.h"

namespace fielddb {

TinField::TinField(std::vector<TinVertex> vertices,
                   std::vector<TinTriangle> triangles)
    : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {
  domain_ = Rect2::Empty();
  value_range_ = ValueInterval::Empty();
  for (const TinVertex& v : vertices_) {
    domain_.Extend(v.pos);
    value_range_.Extend(v.value);
  }
}

StatusOr<TinField> TinField::Create(std::vector<TinVertex> vertices,
                                    std::vector<TinTriangle> triangles) {
  if (triangles.empty()) {
    return Status::InvalidArgument("TIN must have at least one triangle");
  }
  for (const TinTriangle& t : triangles) {
    for (const uint32_t vi : t.v) {
      if (vi >= vertices.size()) {
        return Status::InvalidArgument("triangle vertex index out of range");
      }
    }
    const Triangle2 tri{{vertices[t.v[0]].pos, vertices[t.v[1]].pos,
                         vertices[t.v[2]].pos}};
    if (tri.Area() <= 0.0) {
      return Status::InvalidArgument("degenerate triangle in TIN");
    }
  }
  return TinField(std::move(vertices), std::move(triangles));
}

CellRecord TinField::GetCell(CellId id) const {
  const TinTriangle& t = triangles_[id];
  const TinVertex& a = vertices_[t.v[0]];
  const TinVertex& b = vertices_[t.v[1]];
  const TinVertex& c = vertices_[t.v[2]];
  return CellRecord::Triangle(id, a.pos, a.value, b.pos, b.value, c.pos,
                              c.value);
}

}  // namespace fielddb

// The AVX2 interval-filter kernel. This is the only translation unit in
// the library compiled with -mavx2 (see src/CMakeLists.txt); it is built
// only when FIELDDB_ENABLE_AVX2 is ON and must stay behind the
// FIELDDB_HAVE_AVX2 guard so a pure-scalar configuration compiles the
// file to nothing.
#if FIELDDB_HAVE_AVX2

#include <immintrin.h>

#include "common/simd/interval_filter.h"

namespace fielddb {
namespace simd {

void FilterIntervalRangesAvx2(const double* mins, const double* maxs,
                              uint64_t count, uint64_t base, double qmin,
                              double qmax, std::vector<PosRange>* out) {
  const __m256d vqmin = _mm256_set1_pd(qmin);
  const __m256d vqmax = _mm256_set1_pd(qmax);
  uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d lo = _mm256_loadu_pd(mins + i);
    const __m256d hi = _mm256_loadu_pd(maxs + i);
    // Ordered, non-signaling comparisons: a NaN lane yields false in
    // both, exactly like the scalar `<=` / `>=` predicates.
    const __m256d match =
        _mm256_and_pd(_mm256_cmp_pd(lo, vqmax, _CMP_LE_OQ),
                      _mm256_cmp_pd(hi, vqmin, _CMP_GE_OQ));
    const int mask = _mm256_movemask_pd(match);
    if (mask == 0xF) {
      // Whole block matches — extend the open run in one step. This is
      // the common case inside a matching subfield.
      if (!out->empty() && out->back().end == base + i) {
        out->back().end += 4;
      } else {
        out->push_back(PosRange{base + i, base + i + 4});
      }
    } else if (mask != 0) {
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) AppendPosition(out, base + i + lane);
      }
    }
  }
  for (; i < count; ++i) {
    if (mins[i] <= qmax && maxs[i] >= qmin) AppendPosition(out, base + i);
  }
}

}  // namespace simd
}  // namespace fielddb

#endif  // FIELDDB_HAVE_AVX2

#include "common/simd/interval_filter.h"

namespace fielddb {
namespace simd {

#if FIELDDB_HAVE_AVX2
// Defined in interval_filter_avx2.cc, the only TU compiled with -mavx2;
// callable only after a runtime CPUID check (see ResolveKernel).
void FilterIntervalRangesAvx2(const double* mins, const double* maxs,
                              uint64_t count, uint64_t base, double qmin,
                              double qmax, std::vector<PosRange>* out);
#endif

void FilterIntervalRangesScalar(const double* mins, const double* maxs,
                                uint64_t count, uint64_t base, double qmin,
                                double qmax, std::vector<PosRange>* out) {
  for (uint64_t i = 0; i < count; ++i) {
    // NaN anywhere makes both comparisons false: the slot is skipped,
    // matching the AVX2 kernel's ordered (_CMP_*_OQ) predicates.
    if (mins[i] <= qmax && maxs[i] >= qmin) {
      AppendPosition(out, base + i);
    }
  }
}

namespace {

bool Avx2Runnable() {
#if FIELDDB_HAVE_AVX2 && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

IntervalFilterFn ResolveKernel() {
#if FIELDDB_HAVE_AVX2
  if (Avx2Runnable()) return &FilterIntervalRangesAvx2;
#endif
  return &FilterIntervalRangesScalar;
}

}  // namespace

KernelLevel ActiveKernelLevel() {
  static const KernelLevel level =
      Avx2Runnable() ? KernelLevel::kAvx2 : KernelLevel::kScalar;
  return level;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

IntervalFilterFn Avx2KernelOrNull() {
#if FIELDDB_HAVE_AVX2
  if (Avx2Runnable()) return &FilterIntervalRangesAvx2;
#endif
  return nullptr;
}

void FilterIntervalRanges(const double* mins, const double* maxs,
                          uint64_t count, uint64_t base, double qmin,
                          double qmax, std::vector<PosRange>* out) {
  static const IntervalFilterFn kernel = ResolveKernel();
  kernel(mins, maxs, count, base, qmin, qmax, out);
}

}  // namespace simd
}  // namespace fielddb

#ifndef FIELDDB_COMMON_SIMD_INTERVAL_FILTER_H_
#define FIELDDB_COMMON_SIMD_INTERVAL_FILTER_H_

#include <cstdint>
#include <vector>

namespace fielddb {

/// A half-open run [begin, end) of cell-store slot positions. The
/// vectorized filter pipeline talks in runs instead of per-position
/// vectors: a 1%-selectivity query over a 10M-cell store needs a few
/// hundred runs, not 100k positions.
struct PosRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t length() const { return end - begin; }
  friend bool operator==(const PosRange&, const PosRange&) = default;
};

/// Sum of run lengths — the candidate count a range list stands for.
inline uint64_t TotalRangeLength(const std::vector<PosRange>& ranges) {
  uint64_t total = 0;
  for (const PosRange& r : ranges) total += r.length();
  return total;
}

/// Appends position `pos`, extending the last run when contiguous. Every
/// kernel emits through this rule, so equal inputs produce bit-identical
/// range lists regardless of the instruction set that ran.
inline void AppendPosition(std::vector<PosRange>* out, uint64_t pos) {
  if (!out->empty() && out->back().end == pos) {
    ++out->back().end;
  } else {
    out->push_back(PosRange{pos, pos + 1});
  }
}

namespace simd {

/// Which interval-filter kernel the dispatcher resolved to at startup.
enum class KernelLevel { kScalar, kAvx2 };

const char* KernelLevelName(KernelLevel level);

/// The level FilterIntervalRanges executes: AVX2 when the kernel was
/// compiled in (FIELDDB_ENABLE_AVX2) *and* the CPU reports the feature,
/// scalar otherwise. Resolved once per process.
KernelLevel ActiveKernelLevel();

/// Interval-intersection filter over a SoA zone map: appends to `*out`
/// the maximal runs of slots i in [0, count) whose closed interval
/// [mins[i], maxs[i]] intersects [qmin, qmax], with slot i reported as
/// position base + i. The predicate is
///     mins[i] <= qmax && maxs[i] >= qmin
/// — NaN in any operand compares false (the slot never matches), and
/// ±inf behave as ordinary ordered values. Runs already in `*out` are
/// extended when contiguous (see AppendPosition), so a caller may feed
/// consecutive chunks through repeated calls.
///
/// All kernels are bit-identical: for equal inputs the scalar fallback,
/// the AVX2 kernel, and the dispatched entry point produce equal range
/// lists (tests/simd_filter_test.cc proves it differentially).
void FilterIntervalRanges(const double* mins, const double* maxs,
                          uint64_t count, uint64_t base, double qmin,
                          double qmax, std::vector<PosRange>* out);

/// The portable fallback, callable directly (benchmarks and differential
/// tests compare it against the dispatched kernel).
void FilterIntervalRangesScalar(const double* mins, const double* maxs,
                                uint64_t count, uint64_t base, double qmin,
                                double qmax, std::vector<PosRange>* out);

/// Function-pointer type of an interval-filter kernel.
using IntervalFilterFn = void (*)(const double* mins, const double* maxs,
                                  uint64_t count, uint64_t base, double qmin,
                                  double qmax, std::vector<PosRange>* out);

/// The AVX2 kernel when it is both compiled in and runnable on this CPU;
/// nullptr otherwise. Lets tests and benchmarks target it explicitly
/// without referencing a symbol that a scalar-only build does not link.
IntervalFilterFn Avx2KernelOrNull();

}  // namespace simd
}  // namespace fielddb

#endif  // FIELDDB_COMMON_SIMD_INTERVAL_FILTER_H_

#ifndef FIELDDB_COMMON_STATUS_H_
#define FIELDDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fielddb {

/// Error categories used across the library. Modeled after the RocksDB
/// `Status` idiom: functions that can fail return a `Status` (or a
/// `StatusOr<T>`), never throw across the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIOError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Lightweight success/error result. Cheap to copy in the OK case (no
/// allocation); error states carry a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: grid must be non-empty".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Dereferencing a
/// non-OK `StatusOr` is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from an error status. `s` must not be OK.
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Converts a StatusCode to its PascalCase name.
const char* StatusCodeToString(StatusCode code);

}  // namespace fielddb

/// Evaluates `expr`; returns the resulting Status from the enclosing
/// function if it is not OK.
#define FIELDDB_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::fielddb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // FIELDDB_COMMON_STATUS_H_

#include "common/geometry.h"

#include <algorithm>

namespace fielddb {

std::array<double, 3> Triangle2::Barycentric(Point2 p) const {
  const Point2 a = v[0], b = v[1], c = v[2];
  const double denom = Cross(b - a, c - a);
  if (std::abs(denom) < kGeomEpsilon * kGeomEpsilon) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan, nan};
  }
  const double l1 = Cross(p - a, c - a) / denom;
  const double l2 = Cross(b - a, p - a) / denom;
  return {1.0 - l1 - l2, l1, l2};
}

bool Triangle2::Contains(Point2 p) const {
  const std::array<double, 3> l = Barycentric(p);
  // Scale the tolerance a little: barycentric coords of points on an edge
  // computed in floating point can be slightly negative.
  constexpr double tol = 1e-9;
  return l[0] >= -tol && l[1] >= -tol && l[2] >= -tol &&
         !std::isnan(l[0]);
}

double ConvexPolygon::Area() const {
  if (IsEmpty()) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Point2 p = vertices[i];
    const Point2 q = vertices[(i + 1) % vertices.size()];
    twice += Cross(p, q);
  }
  return std::abs(twice) / 2.0;
}

Point2 ConvexPolygon::Centroid() const {
  if (vertices.empty()) return {0, 0};
  if (vertices.size() < 3) {
    Point2 sum{0, 0};
    for (const Point2& p : vertices) sum = sum + p;
    return {sum.x / vertices.size(), sum.y / vertices.size()};
  }
  // Area-weighted centroid; falls back to the vertex mean for degenerate
  // (zero-area) polygons.
  double twice_area = 0.0;
  Point2 acc{0, 0};
  for (size_t i = 0; i < vertices.size(); ++i) {
    const Point2 p = vertices[i];
    const Point2 q = vertices[(i + 1) % vertices.size()];
    const double w = Cross(p, q);
    twice_area += w;
    acc.x += (p.x + q.x) * w;
    acc.y += (p.y + q.y) * w;
  }
  if (std::abs(twice_area) < kGeomEpsilon) {
    Point2 sum{0, 0};
    for (const Point2& p : vertices) sum = sum + p;
    return {sum.x / vertices.size(), sum.y / vertices.size()};
  }
  return {acc.x / (3.0 * twice_area), acc.y / (3.0 * twice_area)};
}

Rect2 ConvexPolygon::BoundingBox() const {
  Rect2 r = Rect2::Empty();
  for (const Point2& p : vertices) r.Extend(p);
  return r;
}

ConvexPolygon ClipHalfPlane(const ConvexPolygon& poly, Point2 n, double c) {
  ConvexPolygon out;
  const size_t count = poly.vertices.size();
  if (count == 0) return out;
  out.vertices.reserve(count + 1);
  for (size_t i = 0; i < count; ++i) {
    const Point2 cur = poly.vertices[i];
    const Point2 nxt = poly.vertices[(i + 1) % count];
    const double dc = Dot(n, cur) + c;
    const double dn = Dot(n, nxt) + c;
    if (dc >= 0) out.vertices.push_back(cur);
    // Edge crosses the boundary: emit the intersection point.
    if ((dc > 0 && dn < 0) || (dc < 0 && dn > 0)) {
      const double t = dc / (dc - dn);
      out.vertices.push_back(cur + t * (nxt - cur));
    }
  }
  if (out.vertices.size() < 3) out.vertices.clear();
  return out;
}

ConvexPolygon PolygonFromTriangle(const Triangle2& t) {
  ConvexPolygon poly;
  if (t.SignedArea() >= 0) {
    poly.vertices = {t.v[0], t.v[1], t.v[2]};
  } else {
    poly.vertices = {t.v[0], t.v[2], t.v[1]};
  }
  return poly;
}

ConvexPolygon PolygonFromRect(const Rect2& r) {
  ConvexPolygon poly;
  if (r.IsEmpty()) return poly;
  poly.vertices = {{r.lo.x, r.lo.y},
                   {r.hi.x, r.lo.y},
                   {r.hi.x, r.hi.y},
                   {r.lo.x, r.hi.y}};
  return poly;
}

}  // namespace fielddb

#include "common/interval.h"

#include <cstdio>

namespace fielddb {

std::string ValueInterval::ToString() const {
  if (IsEmpty()) return "[empty]";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%g, %g]", min, max);
  return buf;
}

}  // namespace fielddb

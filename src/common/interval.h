#ifndef FIELDDB_COMMON_INTERVAL_H_
#define FIELDDB_COMMON_INTERVAL_H_

#include <algorithm>
#include <limits>
#include <string>

namespace fielddb {

/// A closed interval [min, max] on the field-value domain. This is the
/// 1-D MBR that the paper indexes: every cell / subfield carries the
/// interval of all explicit and implicit values inside it.
struct ValueInterval {
  double min = 0.0;
  double max = 0.0;

  /// The identity for Hull(): contains nothing.
  static ValueInterval Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return ValueInterval{inf, -inf};
  }

  static ValueInterval Of(double a, double b) {
    return ValueInterval{std::min(a, b), std::max(a, b)};
  }

  bool IsEmpty() const { return min > max; }

  bool Contains(double w) const { return w >= min && w <= max; }

  /// Closed-interval intersection test (shared endpoints intersect).
  bool Intersects(const ValueInterval& o) const {
    return min <= o.max && o.min <= max;
  }

  /// Grows this interval to cover value `w`.
  void Extend(double w) {
    min = std::min(min, w);
    max = std::max(max, w);
  }

  /// Grows this interval to cover `o`.
  void Extend(const ValueInterval& o) {
    if (o.IsEmpty()) return;
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }

  /// Smallest interval covering both inputs.
  static ValueInterval Hull(const ValueInterval& a, const ValueInterval& b) {
    ValueInterval h = a;
    h.Extend(b);
    return h;
  }

  /// Geometric length (max - min); 0 for degenerate intervals.
  double Length() const { return IsEmpty() ? 0.0 : max - min; }

  /// Midpoint of the interval.
  double Center() const { return (min + max) / 2.0; }

  /// The paper's "interval size" I = max - min + 1 (Section 3.1): a
  /// degenerate interval (constant cell) has size 1 so that the cost
  /// function's denominator never vanishes.
  double PaperSize() const { return IsEmpty() ? 0.0 : max - min + 1.0; }

  bool operator==(const ValueInterval& other) const = default;

  std::string ToString() const;
};

}  // namespace fielddb

#endif  // FIELDDB_COMMON_INTERVAL_H_

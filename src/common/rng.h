#ifndef FIELDDB_COMMON_RNG_H_
#define FIELDDB_COMMON_RNG_H_

#include <cstdint>

namespace fielddb {

/// Deterministic 64-bit PRNG (xoshiro256++, seeded via SplitMix64).
/// Every generator and workload in this repository takes an explicit seed
/// so that experiments are exactly reproducible across runs and machines.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator; the state is expanded with SplitMix64 so that
  /// small seeds (0, 1, 2, ...) still produce well-mixed streams.
  void Seed(uint64_t seed);

  /// Next 64 uniformly random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Standard normal variate (Box–Muller; two calls per pair, one cached).
  double NextGaussian();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fielddb

#endif  // FIELDDB_COMMON_RNG_H_

#ifndef FIELDDB_COMMON_GEOMETRY_H_
#define FIELDDB_COMMON_GEOMETRY_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace fielddb {

/// Tolerance for geometric predicates on normalized coordinates.
inline constexpr double kGeomEpsilon = 1e-12;

/// A point in the 2-D spatial domain of a field.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point2& other) const = default;
};

inline Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
inline Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
inline Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }

/// Dot product of two 2-D vectors.
inline double Dot(Point2 a, Point2 b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the cross product (signed parallelogram area).
inline double Cross(Point2 a, Point2 b) { return a.x * b.y - a.y * b.x; }

/// Euclidean distance between two points.
inline double Distance(Point2 a, Point2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// An axis-aligned rectangle; the 2-D MBR used throughout the spatial layer.
/// An "empty" rect has lo > hi on some axis (see Empty()).
struct Rect2 {
  Point2 lo;
  Point2 hi;

  /// A rect that contains nothing and acts as the identity for Extend.
  static Rect2 Empty() {
    constexpr double inf = std::numeric_limits<double>::infinity();
    return Rect2{{inf, inf}, {-inf, -inf}};
  }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  bool Contains(Point2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool Intersects(const Rect2& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y;
  }

  /// Grows this rect to cover `p`.
  void Extend(Point2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grows this rect to cover `o`.
  void Extend(const Rect2& o) {
    if (o.IsEmpty()) return;
    Extend(o.lo);
    Extend(o.hi);
  }

  Point2 Center() const {
    return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0};
  }

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }

  bool operator==(const Rect2& other) const = default;
};

/// A triangle given by its three vertices (counter-clockwise preferred but
/// not required; predicates handle either orientation).
struct Triangle2 {
  std::array<Point2, 3> v;

  /// Signed area: positive when the vertices are counter-clockwise.
  double SignedArea() const {
    return 0.5 * Cross(v[1] - v[0], v[2] - v[0]);
  }

  double Area() const { return std::abs(SignedArea()); }

  Point2 Centroid() const {
    return {(v[0].x + v[1].x + v[2].x) / 3.0,
            (v[0].y + v[1].y + v[2].y) / 3.0};
  }

  Rect2 BoundingBox() const {
    Rect2 r = Rect2::Empty();
    for (const Point2& p : v) r.Extend(p);
    return r;
  }

  /// Barycentric coordinates of `p` with respect to this triangle.
  /// Returns {l0, l1, l2} with l0 + l1 + l2 == 1. Any coordinate may be
  /// negative when `p` lies outside. Degenerate triangles return NaNs.
  std::array<double, 3> Barycentric(Point2 p) const;

  /// True when `p` is inside the triangle or on its boundary
  /// (within kGeomEpsilon on barycentric coordinates).
  bool Contains(Point2 p) const;
};

/// A simple convex polygon, vertices in counter-clockwise order.
/// Produced by the estimation step when clipping cells against iso-lines.
struct ConvexPolygon {
  std::vector<Point2> vertices;

  bool IsEmpty() const { return vertices.size() < 3; }

  /// Area by the shoelace formula (vertices assumed CCW; returns the
  /// absolute value so CW input is also handled).
  double Area() const;

  Point2 Centroid() const;

  Rect2 BoundingBox() const;
};

/// Clips a convex polygon against the half-plane `Dot(n, p) + c >= 0`
/// using one pass of Sutherland–Hodgman. The result is convex (possibly
/// empty). `n` need not be unit length.
ConvexPolygon ClipHalfPlane(const ConvexPolygon& poly, Point2 n, double c);

/// Convenience: clips against `a*x + b*y + c >= 0`.
inline ConvexPolygon ClipHalfPlane(const ConvexPolygon& poly, double a,
                                   double b, double c) {
  return ClipHalfPlane(poly, Point2{a, b}, c);
}

/// Builds a polygon from a triangle, normalizing orientation to CCW.
ConvexPolygon PolygonFromTriangle(const Triangle2& t);

/// Builds a polygon from an axis-aligned rectangle (CCW).
ConvexPolygon PolygonFromRect(const Rect2& r);

}  // namespace fielddb

#endif  // FIELDDB_COMMON_GEOMETRY_H_

#ifndef FIELDDB_RTREE_RSTAR_TREE_H_
#define FIELDDB_RTREE_RSTAR_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "rtree/box.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fielddb {

/// An entry of an R*-tree node. In internal nodes `a` is the child page id
/// and `b` is unused; in leaves `(a, b)` is an opaque 16-byte payload
/// (cell id for I-All; [start, end) cell-store positions for I-Hilbert
/// subfields, matching the paper's leaf layout in Fig. 6).
template <int Dim>
struct RTreeEntry {
  Box<Dim> box;
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const RTreeEntry& other) const = default;
};

/// Tuning knobs. Defaults follow Beckmann et al. [1]: 40% minimum fill,
/// 30% forced-reinsert fraction.
struct RStarOptions {
  double min_fill_fraction = 0.4;
  double reinsert_fraction = 0.3;
  /// Leaf/internal fill used by BulkLoad (Kamel & Faloutsos packing [14]).
  double bulk_fill_fraction = 1.0;
};

/// Persistable tree identity: everything needed to re-attach a tree to its
/// page file in a later session.
struct RStarMeta {
  PageId root = kInvalidPageId;
  uint32_t height = 0;   // number of levels; leaf level is 0
  uint64_t size = 0;     // number of leaf entries
  uint64_t num_nodes = 0;
};

/// A disk-page R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD'90)
/// over `Dim`-dimensional boxes. Nodes occupy one buffer-pool page each;
/// all node traffic is counted by the pool, which is how the experiment
/// harness attributes I/O cost to the index.
///
/// Used with Dim=1 to index value intervals (the paper's 1-D R*-tree for
/// I-All and I-Hilbert) and Dim=2 as the conventional spatial index for
/// point (Q1) queries on TINs.
template <int Dim>
class RStarTree {
 public:
  using Entry = RTreeEntry<Dim>;
  using BoxT = Box<Dim>;
  /// Return false to stop the search early.
  using Visitor = std::function<bool(const Entry&)>;

  /// Creates an empty tree whose nodes are allocated from `pool`.
  /// The pool must outlive the tree.
  static StatusOr<RStarTree> Create(BufferPool* pool,
                                    const RStarOptions& options = {});

  /// Re-attaches to an existing tree in `pool`'s page file.
  static RStarTree Attach(BufferPool* pool, const RStarMeta& meta,
                          const RStarOptions& options = {});

  /// Bulk-loads from leaf entries *already sorted by the caller* (for the
  /// paper's workloads: by Hilbert value, per Kamel & Faloutsos [14]).
  /// Packs leaves to `options.bulk_fill_fraction` of capacity and builds
  /// upper levels bottom-up.
  static StatusOr<RStarTree> BulkLoad(BufferPool* pool,
                                      const std::vector<Entry>& sorted,
                                      const RStarOptions& options = {});

  RStarTree(RStarTree&&) = default;
  RStarTree& operator=(RStarTree&&) = default;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one leaf entry (R* insertion with forced reinsert).
  Status Insert(const BoxT& box, uint64_t a, uint64_t b = 0);

  /// Removes the leaf entry exactly matching (box, a, b). Underfull nodes
  /// are dissolved and their entries reinserted (condense-tree).
  /// Returns NotFound if no such entry exists.
  Status Delete(const BoxT& box, uint64_t a, uint64_t b = 0);

  /// Visits every leaf entry whose box intersects `query`.
  Status Search(const BoxT& query, const Visitor& visit) const;

  /// Convenience: collects intersecting leaf entries into `*out`
  /// (appended; not cleared).
  Status Search(const BoxT& query, std::vector<Entry>* out) const;

  /// A nearest-neighbor hit: the entry plus its squared MINDIST to the
  /// query point.
  struct Neighbor {
    Entry entry;
    double distance2 = 0.0;
  };

  /// Best-first k-nearest-neighbor search (Hjaltason & Samet): the k
  /// leaf entries whose boxes are closest to `point` (MINDIST metric),
  /// in ascending distance order. Ties are broken arbitrarily. With
  /// Dim=1 this answers the paper's "value approximately equal to w'"
  /// queries without guessing an error bound up front.
  Status NearestNeighbors(const std::array<double, Dim>& point, size_t k,
                          std::vector<Neighbor>* out) const;

  /// Number of leaf entries.
  uint64_t size() const { return meta_.size; }
  /// Number of levels (0 for an about-to-be-created tree, 1 = just a leaf).
  uint32_t height() const { return meta_.height; }
  uint64_t num_nodes() const { return meta_.num_nodes; }
  const RStarMeta& meta() const { return meta_; }

  /// Max entries per node for this pool's page size.
  uint32_t max_entries() const { return max_entries_; }
  uint32_t min_entries() const { return min_entries_; }

  /// Walks the whole tree verifying structural invariants (MBR containment,
  /// fill bounds, uniform leaf depth, node/entry counts). For tests.
  Status CheckInvariants() const;

 private:
  struct Node {
    uint32_t level = 0;  // 0 = leaf
    std::vector<Entry> entries;
  };

  struct PendingInsert {
    Entry entry;
    uint32_t level;
  };

  RStarTree(BufferPool* pool, const RStarOptions& options);

  static uint32_t MaxEntriesFor(uint32_t page_size);

  Status LoadNode(PageId id, Node* node) const;
  Status StoreNode(PageId id, const Node& node) const;
  StatusOr<PageId> AllocNode();
  void FreeNode(PageId id);

  static BoxT NodeBox(const Node& node);

  /// R* ChooseSubtree: index of the child of `node` to descend into when
  /// inserting `box` toward `target_level`.
  size_t ChooseSubtree(const Node& node, const BoxT& box) const;

  /// Recursive insert; see implementation for the contract.
  Status InsertRec(PageId page_id, const PendingInsert& ins,
                   std::vector<bool>* reinserted_at_level,
                   std::vector<PendingInsert>* pending,
                   std::optional<Entry>* split_out, BoxT* box_out);

  /// Splits an overflowing node (R* topological split). On return `node`
  /// keeps the first group; the second group is written to a new page and
  /// returned as an entry.
  StatusOr<Entry> SplitNode(Node* node);

  Status DeleteRec(PageId page_id, const BoxT& box, uint64_t a, uint64_t b,
                   std::vector<PendingInsert>* orphans, bool* found,
                   bool* underflow, BoxT* box_out);

  Status SearchRec(PageId page_id, const BoxT& query, const Visitor& visit,
                   bool* keep_going) const;

  Status CheckRec(PageId page_id, const BoxT& parent_box, bool is_root,
                  uint32_t expected_level, uint64_t* leaf_entries,
                  uint64_t* nodes) const;

  Status DrainPending(std::vector<PendingInsert>* pending,
                      std::vector<bool>* reinserted_at_level);

  BufferPool* pool_;
  RStarOptions options_;
  RStarMeta meta_;
  uint32_t max_entries_;
  uint32_t min_entries_;
  uint32_t reinsert_count_;
  std::vector<PageId> free_pages_;

  // Process-wide observability counters (obs/metrics.h), shared by every
  // tree: search-time node visits explain filtering I/O, reinserts and
  // splits expose update-path churn.
  Counter* m_node_visits_;
  Counter* m_reinserts_;
  Counter* m_splits_;
};

// Instantiated in rstar_tree.cc for the dimensions the library uses.
extern template class RStarTree<1>;
extern template class RStarTree<2>;
extern template class RStarTree<3>;

}  // namespace fielddb

#endif  // FIELDDB_RTREE_RSTAR_TREE_H_

#include "rtree/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace fielddb {

namespace {

// Node page layout: [level u32][count u32][reserved 8B][entries...].
constexpr uint32_t kNodeHeaderSize = 16;

}  // namespace

template <int Dim>
RStarTree<Dim>::RStarTree(BufferPool* pool, const RStarOptions& options)
    : pool_(pool), options_(options) {
  max_entries_ = MaxEntriesFor(pool->file()->page_size());
  min_entries_ = std::max<uint32_t>(
      2, static_cast<uint32_t>(options.min_fill_fraction * max_entries_));
  if (min_entries_ > max_entries_ / 2) min_entries_ = max_entries_ / 2;
  reinsert_count_ = std::max<uint32_t>(
      1, static_cast<uint32_t>(options.reinsert_fraction * max_entries_));
  if (reinsert_count_ >= max_entries_) reinsert_count_ = max_entries_ - 1;
  MetricsRegistry& reg = MetricsRegistry::Default();
  m_node_visits_ = reg.GetCounter("rtree.node_visits");
  m_reinserts_ = reg.GetCounter("rtree.reinserts");
  m_splits_ = reg.GetCounter("rtree.splits");
}

template <int Dim>
uint32_t RStarTree<Dim>::MaxEntriesFor(uint32_t page_size) {
  static_assert(std::is_trivially_copyable_v<Entry>);
  const uint32_t cap = (page_size - kNodeHeaderSize) / sizeof(Entry);
  assert(cap >= 4 && "page too small for an R*-tree node");
  return cap;
}

template <int Dim>
StatusOr<RStarTree<Dim>> RStarTree<Dim>::Create(BufferPool* pool,
                                                const RStarOptions& options) {
  RStarTree tree(pool, options);
  StatusOr<PageId> root = tree.AllocNode();
  if (!root.ok()) return root.status();
  Node empty_leaf;
  FIELDDB_RETURN_IF_ERROR(tree.StoreNode(*root, empty_leaf));
  tree.meta_.root = *root;
  tree.meta_.height = 1;
  tree.meta_.size = 0;
  return tree;
}

template <int Dim>
RStarTree<Dim> RStarTree<Dim>::Attach(BufferPool* pool, const RStarMeta& meta,
                                      const RStarOptions& options) {
  RStarTree tree(pool, options);
  tree.meta_ = meta;
  return tree;
}

template <int Dim>
Status RStarTree<Dim>::LoadNode(PageId id, Node* node) const {
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(id, &pin));
  const Page& page = pin.page();
  node->level = page.template ReadAt<uint32_t>(0);
  const uint32_t count = page.template ReadAt<uint32_t>(4);
  if (count > max_entries_ + 1) {
    return Status::Corruption("node entry count out of bounds");
  }
  node->entries.resize(count);
  page.Read(kNodeHeaderSize, node->entries.data(),
            count * static_cast<uint32_t>(sizeof(Entry)));
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::StoreNode(PageId id, const Node& node) const {
  PinnedPage pin;
  FIELDDB_RETURN_IF_ERROR(pool_->Fetch(id, &pin));
  Page& page = pin.MutablePage();
  page.template WriteAt<uint32_t>(0, node.level);
  page.template WriteAt<uint32_t>(
      4, static_cast<uint32_t>(node.entries.size()));
  if (!node.entries.empty()) {
    page.Write(kNodeHeaderSize, node.entries.data(),
               static_cast<uint32_t>(node.entries.size() * sizeof(Entry)));
  }
  return Status::OK();
}

template <int Dim>
StatusOr<PageId> RStarTree<Dim>::AllocNode() {
  ++meta_.num_nodes;
  if (!free_pages_.empty()) {
    const PageId id = free_pages_.back();
    free_pages_.pop_back();
    return id;
  }
  PinnedPage pin;
  return pool_->Allocate(&pin);
}

template <int Dim>
void RStarTree<Dim>::FreeNode(PageId id) {
  --meta_.num_nodes;
  free_pages_.push_back(id);
}

template <int Dim>
Box<Dim> RStarTree<Dim>::NodeBox(const Node& node) {
  BoxT box = BoxT::Empty();
  for (const Entry& e : node.entries) box.Extend(e.box);
  return box;
}

template <int Dim>
size_t RStarTree<Dim>::ChooseSubtree(const Node& node,
                                     const BoxT& box) const {
  assert(!node.entries.empty());
  size_t best = 0;
  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement
    // (ties: area enlargement, then area) per Beckmann et al.
    double best_overlap_delta = std::numeric_limits<double>::infinity();
    double best_area_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      BoxT enlarged = node.entries[i].box;
      enlarged.Extend(box);
      double overlap_before = 0.0, overlap_after = 0.0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += node.entries[i].box.OverlapArea(node.entries[j].box);
        overlap_after += enlarged.OverlapArea(node.entries[j].box);
      }
      const double overlap_delta = overlap_after - overlap_before;
      const double area = node.entries[i].box.Area();
      const double area_delta = enlarged.Area() - area;
      if (overlap_delta < best_overlap_delta ||
          (overlap_delta == best_overlap_delta &&
           (area_delta < best_area_delta ||
            (area_delta == best_area_delta && area < best_area)))) {
        best = i;
        best_overlap_delta = overlap_delta;
        best_area_delta = area_delta;
        best_area = area;
      }
    }
  } else {
    // Children are internal: minimize area enlargement (ties: area).
    double best_area_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      BoxT enlarged = node.entries[i].box;
      enlarged.Extend(box);
      const double area = node.entries[i].box.Area();
      const double area_delta = enlarged.Area() - area;
      if (area_delta < best_area_delta ||
          (area_delta == best_area_delta && area < best_area)) {
        best = i;
        best_area_delta = area_delta;
        best_area = area;
      }
    }
  }
  return best;
}

template <int Dim>
StatusOr<RTreeEntry<Dim>> RStarTree<Dim>::SplitNode(Node* node) {
  m_splits_->Increment();
  std::vector<Entry>& entries = node->entries;
  const size_t total = entries.size();
  const size_t m = min_entries_;
  assert(total >= 2 * m);

  // R* split, step 1: choose the axis with minimum margin sum over all
  // candidate distributions of both sorts (by lower and by upper value).
  int best_axis = 0;
  bool best_axis_by_upper = false;
  double best_margin = std::numeric_limits<double>::infinity();
  std::vector<Entry> scratch = entries;

  const auto eval_axis = [&](int axis, bool by_upper) -> double {
    std::sort(scratch.begin(), scratch.end(),
              [&](const Entry& x, const Entry& y) {
                return by_upper ? x.box.hi[axis] < y.box.hi[axis]
                                : x.box.lo[axis] < y.box.lo[axis];
              });
    // Prefix/suffix boxes make each distribution O(1).
    std::vector<BoxT> prefix(total), suffix(total);
    BoxT acc = BoxT::Empty();
    for (size_t i = 0; i < total; ++i) {
      acc.Extend(scratch[i].box);
      prefix[i] = acc;
    }
    acc = BoxT::Empty();
    for (size_t i = total; i-- > 0;) {
      acc.Extend(scratch[i].box);
      suffix[i] = acc;
    }
    double margin_sum = 0.0;
    for (size_t k = m; k + m <= total; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return margin_sum;
  };

  for (int axis = 0; axis < Dim; ++axis) {
    for (const bool by_upper : {false, true}) {
      const double margin = eval_axis(axis, by_upper);
      if (margin < best_margin) {
        best_margin = margin;
        best_axis = axis;
        best_axis_by_upper = by_upper;
      }
    }
  }

  // Step 2: on the chosen axis/sort, pick the distribution with minimum
  // overlap (ties: minimum combined area).
  std::sort(entries.begin(), entries.end(),
            [&](const Entry& x, const Entry& y) {
              return best_axis_by_upper
                         ? x.box.hi[best_axis] < y.box.hi[best_axis]
                         : x.box.lo[best_axis] < y.box.lo[best_axis];
            });
  std::vector<BoxT> prefix(total), suffix(total);
  BoxT acc = BoxT::Empty();
  for (size_t i = 0; i < total; ++i) {
    acc.Extend(entries[i].box);
    prefix[i] = acc;
  }
  acc = BoxT::Empty();
  for (size_t i = total; i-- > 0;) {
    acc.Extend(entries[i].box);
    suffix[i] = acc;
  }
  size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t k = m; k + m <= total; ++k) {
    const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  Node sibling;
  sibling.level = node->level;
  sibling.entries.assign(entries.begin() + best_k, entries.end());
  entries.resize(best_k);

  StatusOr<PageId> sibling_page = AllocNode();
  if (!sibling_page.ok()) return sibling_page.status();
  FIELDDB_RETURN_IF_ERROR(StoreNode(*sibling_page, sibling));

  Entry sibling_entry;
  sibling_entry.box = NodeBox(sibling);
  sibling_entry.a = *sibling_page;
  sibling_entry.b = 0;
  return sibling_entry;
}

template <int Dim>
Status RStarTree<Dim>::InsertRec(PageId page_id, const PendingInsert& ins,
                                 std::vector<bool>* reinserted_at_level,
                                 std::vector<PendingInsert>* pending,
                                 std::optional<Entry>* split_out,
                                 BoxT* box_out) {
  Node node;
  FIELDDB_RETURN_IF_ERROR(LoadNode(page_id, &node));

  if (node.level == ins.level) {
    node.entries.push_back(ins.entry);
  } else {
    assert(node.level > ins.level);
    const size_t child_idx = ChooseSubtree(node, ins.entry.box);
    const PageId child = node.entries[child_idx].a;
    std::optional<Entry> child_split;
    BoxT child_box;
    FIELDDB_RETURN_IF_ERROR(InsertRec(child, ins, reinserted_at_level,
                                      pending, &child_split, &child_box));
    node.entries[child_idx].box = child_box;
    if (child_split.has_value()) {
      node.entries.push_back(*child_split);
    }
  }

  split_out->reset();
  if (node.entries.size() > max_entries_) {
    const bool is_root = (page_id == meta_.root);
    const bool may_reinsert =
        !is_root && node.level < reinserted_at_level->size() &&
        !(*reinserted_at_level)[node.level];
    if (may_reinsert) {
      // Forced reinsert: remove the reinsert_count_ entries whose centers
      // are farthest from the node's center, re-add them from the top.
      m_reinserts_->Increment();
      (*reinserted_at_level)[node.level] = true;
      const BoxT node_box = NodeBox(node);
      std::vector<std::pair<double, size_t>> by_dist;
      by_dist.reserve(node.entries.size());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        by_dist.emplace_back(node.entries[i].box.CenterDistance2(node_box),
                             i);
      }
      std::sort(by_dist.begin(), by_dist.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      std::vector<bool> removed(node.entries.size(), false);
      for (uint32_t i = 0; i < reinsert_count_; ++i) {
        const size_t idx = by_dist[i].second;
        removed[idx] = true;
        pending->push_back(PendingInsert{node.entries[idx], node.level});
      }
      std::vector<Entry> kept;
      kept.reserve(node.entries.size() - reinsert_count_);
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (!removed[i]) kept.push_back(node.entries[i]);
      }
      node.entries = std::move(kept);
    } else {
      StatusOr<Entry> sibling = SplitNode(&node);
      if (!sibling.ok()) return sibling.status();
      *split_out = *sibling;
    }
  }

  FIELDDB_RETURN_IF_ERROR(StoreNode(page_id, node));
  *box_out = NodeBox(node);
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::DrainPending(std::vector<PendingInsert>* pending,
                                    std::vector<bool>* reinserted_at_level) {
  while (!pending->empty()) {
    const PendingInsert ins = pending->back();
    pending->pop_back();
    std::optional<Entry> split;
    BoxT root_box;
    FIELDDB_RETURN_IF_ERROR(InsertRec(meta_.root, ins, reinserted_at_level,
                                      pending, &split, &root_box));
    if (split.has_value()) {
      // Root split: grow the tree by one level.
      Node old_root;
      FIELDDB_RETURN_IF_ERROR(LoadNode(meta_.root, &old_root));
      Node new_root;
      new_root.level = old_root.level + 1;
      Entry left;
      left.box = NodeBox(old_root);
      left.a = meta_.root;
      new_root.entries = {left, *split};
      StatusOr<PageId> new_root_page = AllocNode();
      if (!new_root_page.ok()) return new_root_page.status();
      FIELDDB_RETURN_IF_ERROR(StoreNode(*new_root_page, new_root));
      meta_.root = *new_root_page;
      ++meta_.height;
      if (reinserted_at_level->size() < meta_.height) {
        reinserted_at_level->resize(meta_.height, false);
      }
    }
  }
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::Insert(const BoxT& box, uint64_t a, uint64_t b) {
  if (box.IsEmpty()) {
    return Status::InvalidArgument("cannot insert an empty box");
  }
  Entry entry;
  entry.box = box;
  entry.a = a;
  entry.b = b;
  std::vector<PendingInsert> pending{PendingInsert{entry, 0}};
  std::vector<bool> reinserted(meta_.height, false);
  FIELDDB_RETURN_IF_ERROR(DrainPending(&pending, &reinserted));
  ++meta_.size;
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::DeleteRec(PageId page_id, const BoxT& box, uint64_t a,
                                 uint64_t b,
                                 std::vector<PendingInsert>* orphans,
                                 bool* found, bool* underflow,
                                 BoxT* box_out) {
  Node node;
  FIELDDB_RETURN_IF_ERROR(LoadNode(page_id, &node));
  *found = false;
  *underflow = false;

  if (node.level == 0) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Entry& e = node.entries[i];
      if (e.box == box && e.a == a && e.b == b) {
        node.entries.erase(node.entries.begin() + i);
        *found = true;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < node.entries.size() && !*found; ++i) {
      if (!node.entries[i].box.Contains(box)) continue;
      bool child_found = false, child_underflow = false;
      BoxT child_box;
      FIELDDB_RETURN_IF_ERROR(DeleteRec(node.entries[i].a, box, a, b,
                                        orphans, &child_found,
                                        &child_underflow, &child_box));
      if (!child_found) continue;
      *found = true;
      if (child_underflow) {
        // Dissolve the child: stash its remaining entries for reinsertion
        // at their level, drop it from this node.
        Node child;
        FIELDDB_RETURN_IF_ERROR(LoadNode(node.entries[i].a, &child));
        for (const Entry& e : child.entries) {
          orphans->push_back(PendingInsert{e, child.level});
        }
        FreeNode(node.entries[i].a);
        node.entries.erase(node.entries.begin() + i);
      } else {
        node.entries[i].box = child_box;
      }
    }
  }

  if (*found) {
    const bool is_root = (page_id == meta_.root);
    if (!is_root && node.entries.size() < min_entries_) {
      // Report underflow; parent dissolves this node (it reloads the
      // surviving entries itself).
      *underflow = true;
    }
    FIELDDB_RETURN_IF_ERROR(StoreNode(page_id, node));
  }
  *box_out = NodeBox(node);
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::Delete(const BoxT& box, uint64_t a, uint64_t b) {
  std::vector<PendingInsert> orphans;
  bool found = false, underflow = false;
  BoxT root_box;
  FIELDDB_RETURN_IF_ERROR(
      DeleteRec(meta_.root, box, a, b, &orphans, &found, &underflow,
                &root_box));
  if (!found) return Status::NotFound("no matching entry");
  --meta_.size;

  std::vector<bool> reinserted(meta_.height, true);  // no forced reinsert
  FIELDDB_RETURN_IF_ERROR(DrainPending(&orphans, &reinserted));

  // Shrink the root while it is internal with a single child.
  for (;;) {
    Node root;
    FIELDDB_RETURN_IF_ERROR(LoadNode(meta_.root, &root));
    if (root.level == 0 || root.entries.size() != 1) break;
    const PageId child = root.entries[0].a;
    FreeNode(meta_.root);
    meta_.root = child;
    --meta_.height;
  }
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::SearchRec(PageId page_id, const BoxT& query,
                                 const Visitor& visit,
                                 bool* keep_going) const {
  m_node_visits_->Increment();
  Node node;
  FIELDDB_RETURN_IF_ERROR(LoadNode(page_id, &node));
  for (const Entry& e : node.entries) {
    if (!*keep_going) return Status::OK();
    if (!e.box.Intersects(query)) continue;
    if (node.level == 0) {
      if (!visit(e)) {
        *keep_going = false;
        return Status::OK();
      }
    } else {
      FIELDDB_RETURN_IF_ERROR(SearchRec(e.a, query, visit, keep_going));
    }
  }
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::Search(const BoxT& query, const Visitor& visit) const {
  bool keep_going = true;
  return SearchRec(meta_.root, query, visit, &keep_going);
}

template <int Dim>
Status RStarTree<Dim>::Search(const BoxT& query,
                              std::vector<Entry>* out) const {
  return Search(query, [out](const Entry& e) {
    out->push_back(e);
    return true;
  });
}

template <int Dim>
Status RStarTree<Dim>::NearestNeighbors(
    const std::array<double, Dim>& point, size_t k,
    std::vector<Neighbor>* out) const {
  if (k == 0 || meta_.size == 0) return Status::OK();

  // Best-first search over a single priority queue holding both nodes
  // and leaf entries, keyed by MINDIST. When a leaf entry reaches the
  // front of the queue, nothing closer can remain.
  struct QueueItem {
    double distance2;
    bool is_leaf_entry;
    PageId page;   // when !is_leaf_entry
    Entry entry;   // when is_leaf_entry
  };
  const auto cmp = [](const QueueItem& x, const QueueItem& y) {
    return x.distance2 > y.distance2;  // min-heap
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)>
      queue(cmp);
  queue.push(QueueItem{0.0, false, meta_.root, Entry{}});

  Node node;
  while (!queue.empty() && out->size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.is_leaf_entry) {
      out->push_back(Neighbor{item.entry, item.distance2});
      continue;
    }
    m_node_visits_->Increment();
    FIELDDB_RETURN_IF_ERROR(LoadNode(item.page, &node));
    for (const Entry& e : node.entries) {
      const double d2 = e.box.MinDist2(point);
      if (node.level == 0) {
        queue.push(QueueItem{d2, true, kInvalidPageId, e});
      } else {
        queue.push(QueueItem{d2, false, e.a, Entry{}});
      }
    }
  }
  return Status::OK();
}

template <int Dim>
StatusOr<RStarTree<Dim>> RStarTree<Dim>::BulkLoad(
    BufferPool* pool, const std::vector<Entry>& sorted,
    const RStarOptions& options) {
  StatusOr<RStarTree> tree_or = Create(pool, options);
  if (!tree_or.ok()) return tree_or.status();
  RStarTree tree = std::move(tree_or).value();
  if (sorted.empty()) return tree;

  const uint32_t cap = std::max<uint32_t>(
      tree.min_entries_,
      static_cast<uint32_t>(options.bulk_fill_fraction * tree.max_entries_));

  // Pack the current level into nodes of `cap` entries; the last node may
  // run short but never below min_entries_ (borrow from its predecessor).
  std::vector<Entry> level_entries = sorted;
  uint32_t level = 0;
  // The empty root made by Create() is recycled as scratch; free it.
  tree.FreeNode(tree.meta_.root);

  while (true) {
    std::vector<Entry> parents;
    size_t i = 0;
    const size_t n = level_entries.size();
    while (i < n) {
      size_t take = std::min<size_t>(cap, n - i);
      const size_t remaining_after = n - i - take;
      if (remaining_after > 0 && remaining_after < tree.min_entries_) {
        take -= (tree.min_entries_ - remaining_after);
      }
      Node node;
      node.level = level;
      node.entries.assign(level_entries.begin() + i,
                          level_entries.begin() + i + take);
      i += take;
      StatusOr<PageId> page = tree.AllocNode();
      if (!page.ok()) return page.status();
      FIELDDB_RETURN_IF_ERROR(tree.StoreNode(*page, node));
      Entry parent;
      parent.box = NodeBox(node);
      parent.a = *page;
      parents.push_back(parent);
    }
    if (parents.size() == 1) {
      tree.meta_.root = parents[0].a;
      tree.meta_.height = level + 1;
      break;
    }
    level_entries = std::move(parents);
    ++level;
  }
  tree.meta_.size = sorted.size();
  return tree;
}

template <int Dim>
Status RStarTree<Dim>::CheckRec(PageId page_id, const BoxT& parent_box,
                                bool is_root, uint32_t expected_level,
                                uint64_t* leaf_entries,
                                uint64_t* nodes) const {
  Node node;
  FIELDDB_RETURN_IF_ERROR(LoadNode(page_id, &node));
  ++*nodes;
  if (node.level != expected_level) {
    return Status::Corruption("level mismatch: leaves not at uniform depth");
  }
  if (node.entries.size() > max_entries_) {
    return Status::Corruption("node overflow");
  }
  if (!is_root && node.entries.size() < min_entries_) {
    return Status::Corruption("node underflow");
  }
  if (is_root && meta_.size > 0 && node.entries.empty()) {
    return Status::Corruption("root empty but tree non-empty");
  }
  if (!is_root) {
    BoxT box = NodeBox(node);
    if (!parent_box.Contains(box)) {
      return Status::Corruption("parent MBR does not contain child MBR");
    }
  }
  if (node.level == 0) {
    *leaf_entries += node.entries.size();
  } else {
    for (const Entry& e : node.entries) {
      FIELDDB_RETURN_IF_ERROR(CheckRec(e.a, e.box, false, node.level - 1,
                                       leaf_entries, nodes));
    }
  }
  return Status::OK();
}

template <int Dim>
Status RStarTree<Dim>::CheckInvariants() const {
  uint64_t leaf_entries = 0;
  uint64_t nodes = 0;
  Node root;
  FIELDDB_RETURN_IF_ERROR(LoadNode(meta_.root, &root));
  if (root.level + 1 != meta_.height) {
    return Status::Corruption("height does not match root level");
  }
  FIELDDB_RETURN_IF_ERROR(CheckRec(meta_.root, BoxT::Empty(), true,
                                   root.level, &leaf_entries, &nodes));
  if (leaf_entries != meta_.size) {
    return Status::Corruption("leaf entry count mismatch: have " +
                              std::to_string(leaf_entries) + ", expected " +
                              std::to_string(meta_.size));
  }
  if (nodes != meta_.num_nodes) {
    return Status::Corruption("node count mismatch");
  }
  return Status::OK();
}

template class RStarTree<1>;
template class RStarTree<2>;
template class RStarTree<3>;

}  // namespace fielddb

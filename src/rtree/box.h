#ifndef FIELDDB_RTREE_BOX_H_
#define FIELDDB_RTREE_BOX_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>

#include "common/geometry.h"
#include "common/interval.h"

namespace fielddb {

/// Axis-aligned box in Dim dimensions — the MBR type stored in R*-tree
/// entries. Dim=1 boxes are the value intervals of cells/subfields;
/// Dim=2 boxes are spatial cell MBRs for conventional (Q1) queries.
template <int Dim>
struct Box {
  static_assert(Dim >= 1 && Dim <= 8);

  std::array<double, Dim> lo;
  std::array<double, Dim> hi;

  static Box Empty() {
    Box b;
    constexpr double inf = std::numeric_limits<double>::infinity();
    b.lo.fill(inf);
    b.hi.fill(-inf);
    return b;
  }

  bool IsEmpty() const {
    for (int d = 0; d < Dim; ++d) {
      if (lo[d] > hi[d]) return true;
    }
    return false;
  }

  bool Intersects(const Box& o) const {
    for (int d = 0; d < Dim; ++d) {
      if (lo[d] > o.hi[d] || o.lo[d] > hi[d]) return false;
    }
    return true;
  }

  bool Contains(const Box& o) const {
    for (int d = 0; d < Dim; ++d) {
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    }
    return true;
  }

  void Extend(const Box& o) {
    for (int d = 0; d < Dim; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  /// Product of extents (length in 1-D, area in 2-D, volume in 3-D).
  double Area() const {
    if (IsEmpty()) return 0.0;
    double a = 1.0;
    for (int d = 0; d < Dim; ++d) a *= hi[d] - lo[d];
    return a;
  }

  /// Sum of extents — the "margin" the R* split minimizes.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    double m = 0.0;
    for (int d = 0; d < Dim; ++d) m += hi[d] - lo[d];
    return m;
  }

  /// Area of the intersection with `o` (0 when disjoint).
  double OverlapArea(const Box& o) const {
    double a = 1.0;
    for (int d = 0; d < Dim; ++d) {
      const double w =
          std::min(hi[d], o.hi[d]) - std::max(lo[d], o.lo[d]);
      if (w <= 0.0) return 0.0;
      a *= w;
    }
    return a;
  }

  std::array<double, Dim> Center() const {
    std::array<double, Dim> c;
    for (int d = 0; d < Dim; ++d) c[d] = (lo[d] + hi[d]) / 2.0;
    return c;
  }

  /// Squared Euclidean distance from a point to the nearest point of
  /// this box (0 when the point is inside) — MINDIST of the classic
  /// R-tree nearest-neighbor algorithms.
  double MinDist2(const std::array<double, Dim>& p) const {
    double s = 0.0;
    for (int d = 0; d < Dim; ++d) {
      double dd = 0.0;
      if (p[d] < lo[d]) {
        dd = lo[d] - p[d];
      } else if (p[d] > hi[d]) {
        dd = p[d] - hi[d];
      }
      s += dd * dd;
    }
    return s;
  }

  /// Squared Euclidean distance between box centers.
  double CenterDistance2(const Box& o) const {
    double s = 0.0;
    for (int d = 0; d < Dim; ++d) {
      const double dd = (lo[d] + hi[d]) / 2.0 - (o.lo[d] + o.hi[d]) / 2.0;
      s += dd * dd;
    }
    return s;
  }

  bool operator==(const Box& other) const = default;
};

/// Adapters between the domain types and boxes.
inline Box<1> BoxFromInterval(const ValueInterval& iv) {
  Box<1> b;
  b.lo[0] = iv.min;
  b.hi[0] = iv.max;
  return b;
}

inline ValueInterval IntervalFromBox(const Box<1>& b) {
  return ValueInterval{b.lo[0], b.hi[0]};
}

inline Box<2> BoxFromRect(const Rect2& r) {
  Box<2> b;
  b.lo = {r.lo.x, r.lo.y};
  b.hi = {r.hi.x, r.hi.y};
  return b;
}

inline Rect2 RectFromBox(const Box<2>& b) {
  return Rect2{{b.lo[0], b.lo[1]}, {b.hi[0], b.hi[1]}};
}

/// A degenerate box covering exactly one point.
inline Box<2> BoxFromPoint(Point2 p) {
  Box<2> b;
  b.lo = {p.x, p.y};
  b.hi = {p.x, p.y};
  return b;
}

}  // namespace fielddb

#endif  // FIELDDB_RTREE_BOX_H_

#include "temporal/temporal_index.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/geometry.h"
#include "core/ext_sort.h"
#include "field/isoband.h"
#include "index/subfield_maintenance.h"

namespace fielddb {

namespace {

// Synthesizes the spatial cell record of a slab record at intra-slab
// time tau in [0, 1] (vertex-wise linear interpolation).
CellRecord AtTau(const VectorCellRecord& rec, double tau) {
  CellRecord cell;
  cell.num_vertices = rec.num_vertices;
  cell.id = rec.id;
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    cell.x[i] = rec.x[i];
    cell.y[i] = rec.y[i];
    cell.w[i] = (1.0 - tau) * rec.u[i] + tau * rec.v[i];
  }
  return cell;
}

// A slab record's value interval over the whole slab.
ValueInterval SlabInterval(const VectorCellRecord& rec) {
  ValueInterval iv = ValueInterval::Empty();
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    iv.Extend(rec.u[i]);
    iv.Extend(rec.v[i]);
  }
  return iv;
}

constexpr const char* kTemporalMagic = "fielddb-temporal-meta-v1";

struct TemporalMetaData {
  uint32_t page_size = 0;
  uint32_t epoch = 0;
  uint32_t num_slabs = 0;
  uint64_t num_cells = 0;
  bool has_tree = false;
  RStarMeta tree;
  std::vector<PageId> slab_first_pages;        // index = slab k
  std::vector<char> slab_seen;                 // parse bookkeeping
  std::vector<std::vector<Subfield>> slab_subfields;
  uint64_t declared_subfields = 0;
  uint64_t parsed_subfields = 0;
};

Status WriteTemporalMeta(const std::string& path,
                         const TemporalMetaData& meta) {
  return WriteCatalogFile(path, [&](std::FILE* f) {
    std::fprintf(f, "%s\n", kTemporalMagic);
    std::fprintf(f, "page_size %u\n", meta.page_size);
    std::fprintf(f, "epoch %u\n", meta.epoch);
    std::fprintf(f, "num_slabs %u\n", meta.num_slabs);
    std::fprintf(f, "num_cells %" PRIu64 "\n", meta.num_cells);
    if (meta.has_tree) {
      std::fprintf(f, "tree %" PRIu64 " %u %" PRIu64 " %" PRIu64 "\n",
                   meta.tree.root, meta.tree.height, meta.tree.size,
                   meta.tree.num_nodes);
    }
    for (uint32_t k = 0; k < meta.num_slabs; ++k) {
      std::fprintf(f, "slab %u %" PRIu64 "\n", k,
                   meta.slab_first_pages[k]);
    }
    uint64_t total = 0;
    for (const auto& sfs : meta.slab_subfields) total += sfs.size();
    std::fprintf(f, "subfields %" PRIu64 "\n", total);
    for (uint32_t k = 0; k < meta.num_slabs; ++k) {
      for (const Subfield& sf : meta.slab_subfields[k]) {
        std::fprintf(f, "tsf %u %" PRIu64 " %" PRIu64 " %.17g %.17g %.17g\n",
                     k, sf.start, sf.end, sf.interval.min, sf.interval.max,
                     sf.sum_interval_sizes);
      }
    }
    return true;
  });
}

Status ValidateTemporalMeta(const TemporalMetaData& meta,
                            const std::string& path) {
  const auto bad = [&](const char* key) {
    return Status::Corruption("catalog " + path + ": invalid value for '" +
                              key + "'");
  };
  if (meta.page_size == 0 || meta.page_size > (1u << 26)) {
    return bad("page_size");
  }
  if (meta.num_slabs > (1u << 20)) return bad("num_slabs");
  for (uint32_t k = 0; k < meta.num_slabs; ++k) {
    if (!meta.slab_seen[k]) return bad("slab");
  }
  if (meta.declared_subfields != meta.parsed_subfields) {
    return bad("subfields");
  }
  for (const auto& sfs : meta.slab_subfields) {
    for (const Subfield& sf : sfs) {
      if (sf.start > sf.end || sf.end > meta.num_cells) return bad("tsf");
      if (!std::isfinite(sf.interval.min) ||
          !std::isfinite(sf.interval.max) ||
          sf.interval.min > sf.interval.max) {
        return bad("tsf");
      }
      if (!std::isfinite(sf.sum_interval_sizes)) return bad("tsf");
    }
  }
  if (!meta.has_tree) {
    return Status::Corruption("catalog " + path + ": missing tree meta");
  }
  return Status::OK();
}

StatusOr<TemporalMetaData> ReadTemporalMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot read " + path);
  TemporalMetaData meta;
  char magic[64] = {};
  if (std::fscanf(f, "%63s", magic) != 1 ||
      std::string(magic) != kTemporalMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  char key[64];
  bool ok = true;
  while (ok && std::fscanf(f, "%63s", key) == 1) {
    const std::string k = key;
    if (k == "page_size") {
      ok = std::fscanf(f, "%u", &meta.page_size) == 1;
    } else if (k == "epoch") {
      ok = std::fscanf(f, "%u", &meta.epoch) == 1;
    } else if (k == "num_slabs") {
      ok = std::fscanf(f, "%u", &meta.num_slabs) == 1;
      if (ok && meta.num_slabs <= (1u << 20)) {
        meta.slab_first_pages.assign(meta.num_slabs, 0);
        meta.slab_seen.assign(meta.num_slabs, 0);
        meta.slab_subfields.resize(meta.num_slabs);
      }
    } else if (k == "num_cells") {
      ok = std::fscanf(f, "%" SCNu64, &meta.num_cells) == 1;
    } else if (k == "tree") {
      ok = std::fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64,
                       &meta.tree.root, &meta.tree.height, &meta.tree.size,
                       &meta.tree.num_nodes) == 4;
      meta.has_tree = true;
    } else if (k == "slab") {
      uint32_t sk = 0;
      PageId first = 0;
      ok = std::fscanf(f, "%u %" SCNu64, &sk, &first) == 2 &&
           sk < meta.slab_first_pages.size();
      if (ok) {
        meta.slab_first_pages[sk] = first;
        meta.slab_seen[sk] = 1;
      }
    } else if (k == "subfields") {
      ok = std::fscanf(f, "%" SCNu64, &meta.declared_subfields) == 1;
    } else if (k == "tsf") {
      uint32_t sk = 0;
      Subfield sf;
      ok = std::fscanf(f, "%u %" SCNu64 " %" SCNu64 " %lg %lg %lg", &sk,
                       &sf.start, &sf.end, &sf.interval.min,
                       &sf.interval.max, &sf.sum_interval_sizes) == 6 &&
           sk < meta.slab_subfields.size() &&
           meta.parsed_subfields < (uint64_t{1} << 24);
      if (ok) {
        meta.slab_subfields[sk].push_back(sf);
        ++meta.parsed_subfields;
      }
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed catalog " + path);
  FIELDDB_RETURN_IF_ERROR(ValidateTemporalMeta(meta, path));
  return meta;
}

}  // namespace

StatusOr<std::unique_ptr<TemporalFieldDatabase>>
TemporalFieldDatabase::Build(const TemporalGridField& field,
                             const Options& options) {
  auto db =
      std::unique_ptr<TemporalFieldDatabase>(new TemporalFieldDatabase());
  db->num_slabs_ = field.NumSlabs();
  db->t_max_ = static_cast<double>(field.NumSnapshots() - 1);
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  FieldEngine::BuildConfig config;
  config.page_size = options.page_size;
  config.pool_pages = options.pool_pages;
  config.page_file_factory = options.page_file_factory;
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForBuild(config));
  BufferPool* const pool = db->engine_.pool();

  // One shared Hilbert order over the (time-invariant) cell geometry,
  // computed with the external sorter under the build memory budget.
  // The (key, insertion-seq) tie-break equals LinearizeCells's (key, id)
  // sort, so the order is byte-identical to the in-RAM path.
  StatusOr<GridField> first = field.Snapshot(0);
  if (!first.ok()) return first.status();
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(options.curve, options.curve_order);
  const CellId n = field.NumCells();
  const Rect2 domain = first->Domain();
  const double dw = std::max(domain.Width(), kGeomEpsilon);
  const double dh = std::max(domain.Height(), kGeomEpsilon);
  ExternalKeyRecordSorter<CellId> sorter(options.build_memory_budget_bytes);
  for (CellId id = 0; id < n; ++id) {
    const Point2 c = first->GetCell(id).Centroid();
    FIELDDB_RETURN_IF_ERROR(sorter.Add(
        curve->EncodeUnit((c.x - domain.lo.x) / dw,
                          (c.y - domain.lo.y) / dh),
        id));
  }
  std::vector<CellId> order;
  order.reserve(n);
  FIELDDB_RETURN_IF_ERROR(
      sorter.Merge([&](uint64_t, const CellId& id) -> Status {
        order.push_back(id);
        return Status::OK();
      }));
  db->ext_spill_runs_ = sorter.spill_runs();
  db->ext_peak_buffered_bytes_ = sorter.peak_buffered_bytes();
  db->pos_of_.assign(order.size(), 0);
  for (uint64_t pos = 0; pos < order.size(); ++pos) {
    db->pos_of_[order[pos]] = pos;
  }

  const ValueInterval range = field.ValueRange();
  std::vector<RTreeEntry<2>> entries;

  for (uint32_t k = 0; k < db->num_slabs_; ++k) {
    Slab slab;
    slab.zones.Reserve(n);
    RecordStoreAppender<VectorCellRecord> appender(pool);
    SubfieldStreamBuilder costing(range, options.cost);
    for (CellId pos = 0; pos < n; ++pos) {
      const CellId id = order[pos];
      const CellRecord geometry = first->GetCell(id);
      VectorCellRecord rec;
      rec.num_vertices = geometry.num_vertices;
      rec.id = id;
      // Vertex grid coordinates of the quad corners.
      const uint32_t ci = id % field.cols();
      const uint32_t cj = id / field.cols();
      const uint32_t vi[4] = {ci, ci + 1, ci + 1, ci};
      const uint32_t vj[4] = {cj, cj, cj + 1, cj + 1};
      for (int corner = 0; corner < 4; ++corner) {
        rec.x[corner] = geometry.x[corner];
        rec.y[corner] = geometry.y[corner];
        rec.u[corner] = field.SampleAt(k, vi[corner], vj[corner]);
        rec.v[corner] = field.SampleAt(k + 1, vi[corner], vj[corner]);
      }
      FIELDDB_RETURN_IF_ERROR(appender.Append(rec));
      const ValueInterval iv = SlabInterval(rec);
      slab.zones.Append(iv);
      costing.Add(iv);
    }
    StatusOr<RecordStore<VectorCellRecord>> store = appender.Finish();
    if (!store.ok()) return store.status();
    slab.store = std::make_unique<RecordStore<VectorCellRecord>>(
        std::move(store).value());
    slab.subfields = costing.Finish();

    for (size_t si = 0; si < slab.subfields.size(); ++si) {
      RTreeEntry<2> e;
      e.box.lo = {slab.subfields[si].interval.min,
                  static_cast<double>(k)};
      e.box.hi = {slab.subfields[si].interval.max,
                  static_cast<double>(k + 1)};
      e.a = k;
      e.b = si;
      entries.push_back(e);
    }
    db->total_subfields_ += slab.subfields.size();
    db->slabs_.push_back(std::move(slab));
  }

  // Entries arrive slab-major in Hilbert order — already well packed.
  StatusOr<RStarTree<2>> tree =
      RStarTree<2>::BulkLoad(pool, entries, options.rstar);
  if (!tree.ok()) return tree.status();
  db->tree_ = std::make_unique<RStarTree<2>>(std::move(tree).value());

  if (options.wal_mode != WalMode::kOff) {
    FIELDDB_RETURN_IF_ERROR(
        db->engine_.ArmWal(options.wal_path, options.wal_mode));
  }
  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    if (options.wal_mode != WalMode::kOff) {
      db->engine_.LogEvent(EventLog::Event("wal_mode_transition")
                               .Add("from", WalModeName(WalMode::kOff))
                               .Add("to", WalModeName(options.wal_mode))
                               .Add("at", "build"));
    }
  }
  pool->ResetStats();
  return db;
}

Status TemporalFieldDatabase::Save(const std::string& prefix) {
  return SaveImpl(prefix, SnapshotCrashPoint::kNone);
}

Status TemporalFieldDatabase::SaveImpl(const std::string& prefix,
                                       SnapshotCrashPoint crash_point) {
  return engine_.SaveSnapshot(
      prefix, crash_point,
      [&](const std::string& meta_tmp_path, uint32_t new_epoch) -> Status {
        TemporalMetaData meta;
        meta.page_size = engine_.file()->page_size();
        meta.epoch = new_epoch;
        meta.num_slabs = num_slabs_;
        meta.num_cells = pos_of_.size();
        meta.has_tree = tree_ != nullptr;
        if (tree_ != nullptr) meta.tree = tree_->meta();
        meta.slab_first_pages.resize(num_slabs_);
        meta.slab_subfields.resize(num_slabs_);
        for (uint32_t k = 0; k < num_slabs_; ++k) {
          meta.slab_first_pages[k] = slabs_[k].store->first_page();
          meta.slab_subfields[k] = slabs_[k].subfields;
        }
        return WriteTemporalMeta(meta_tmp_path, meta);
      });
}

StatusOr<std::unique_ptr<TemporalFieldDatabase>> TemporalFieldDatabase::Open(
    const std::string& prefix) {
  return Open(prefix, OpenOptions{});
}

StatusOr<std::unique_ptr<TemporalFieldDatabase>> TemporalFieldDatabase::Open(
    const std::string& prefix, const OpenOptions& options) {
  TryCompleteInterruptedSave(
      prefix, [](const std::string& path) -> StatusOr<uint32_t> {
        StatusOr<TemporalMetaData> m = ReadTemporalMeta(path);
        if (!m.ok()) return m.status();
        return m->epoch;
      });

  StatusOr<TemporalMetaData> meta = ReadTemporalMeta(prefix + ".meta");
  if (!meta.ok()) return meta.status();

  auto db =
      std::unique_ptr<TemporalFieldDatabase>(new TemporalFieldDatabase());
  db->num_slabs_ = meta->num_slabs;
  db->t_max_ = static_cast<double>(meta->num_slabs);
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForOpen(
      prefix, meta->page_size, meta->epoch, options.pool_pages));
  BufferPool* const pool = db->engine_.pool();

  const uint64_t num_pages = db->engine_.file()->NumPages();
  if (meta->tree.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'tree'");
  }
  const uint64_t n = meta->num_cells;
  for (uint32_t k = 0; k < meta->num_slabs; ++k) {
    if (n > 0 && meta->slab_first_pages[k] >= num_pages) {
      return Status::Corruption("catalog " + prefix +
                                ".meta: invalid value for 'slab'");
    }
  }

  // Attach the slab stores and rebuild the in-RAM sidecars (zone maps
  // per slab; the shared position map from slab 0's record ids).
  db->pos_of_.assign(n, ~uint64_t{0});
  for (uint32_t k = 0; k < meta->num_slabs; ++k) {
    Slab slab;
    StatusOr<RecordStore<VectorCellRecord>> store =
        RecordStore<VectorCellRecord>::Attach(pool,
                                              meta->slab_first_pages[k], n);
    if (!store.ok()) return store.status();
    slab.store = std::make_unique<RecordStore<VectorCellRecord>>(
        std::move(store).value());
    slab.subfields = std::move(meta->slab_subfields[k]);
    db->total_subfields_ += slab.subfields.size();
    slab.zones.Reserve(n);
    FIELDDB_RETURN_IF_ERROR(slab.store->Scan(
        0, n, [&](uint64_t pos, const VectorCellRecord& rec) {
          slab.zones.Append(SlabInterval(rec));
          if (k == 0 && rec.id < n) db->pos_of_[rec.id] = pos;
          return true;
        }));
    db->slabs_.push_back(std::move(slab));
  }
  if (meta->num_slabs > 0) {
    for (const uint64_t pos : db->pos_of_) {
      if (pos == ~uint64_t{0}) {
        return Status::Corruption("temporal store is missing cell ids");
      }
    }
  } else {
    for (uint64_t i = 0; i < n; ++i) db->pos_of_[i] = i;
  }
  db->tree_ = std::make_unique<RStarTree<2>>(
      RStarTree<2>::Attach(pool, meta->tree));

  // Recovery: a frame carries the snapshot index in values[0] followed
  // by the vertex samples; logical redo through the same apply path
  // updates took maintains subfield hulls, tree entries and zone maps.
  EngineRecoveryReport report;
  TemporalFieldDatabase* const raw = db.get();
  FIELDDB_RETURN_IF_ERROR(db->engine_.RecoverFromWal(
      prefix, options.wal_mode,
      [raw](const WalFrame& frame) -> Status {
        if (frame.values.size() < 2) {
          return Status::Corruption("temporal WAL frame too short");
        }
        const double s = frame.values[0];
        if (!(s >= 0.0) || s != std::floor(s) ||
            s > static_cast<double>(raw->num_slabs_)) {
          return Status::Corruption(
              "temporal WAL frame has an invalid snapshot index");
        }
        const std::vector<double> samples(frame.values.begin() + 1,
                                          frame.values.end());
        return raw->ApplySnapshotCellValues(static_cast<uint32_t>(s),
                                            frame.cell_id, samples);
      },
      [raw, &prefix]() {
        return raw->SaveImpl(prefix, SnapshotCrashPoint::kNone);
      },
      &report));

  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    db->engine_.LogRecoveryEvent(report, options.wal_mode);
  }

  pool->ResetStats();
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return db;
}

Status TemporalFieldDatabase::UpdateSlabSide(
    uint32_t k, uint64_t pos, bool u_side,
    const std::vector<double>& values) {
  Slab& slab = slabs_[k];
  VectorCellRecord rec;
  FIELDDB_RETURN_IF_ERROR(slab.store->Get(pos, &rec));
  if (values.size() != rec.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(rec.num_vertices) + " values, got " +
        std::to_string(values.size()));
  }
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    (u_side ? rec.u : rec.v)[i] = values[i];
  }
  FIELDDB_RETURN_IF_ERROR(slab.store->Put(pos, rec));
  slab.zones.Set(pos, SlabInterval(rec));

  // Refresh the containing subfield's value hull; the time extent
  // [k, k+1] of the tree entry never changes.
  const size_t si = SubfieldContaining(slab.subfields, pos);
  Subfield& sf = slab.subfields[si];
  ValueInterval hull = ValueInterval::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(slab.store->Scan(
      sf.start, sf.end, [&](uint64_t, const VectorCellRecord& member) {
        const ValueInterval iv = SlabInterval(member);
        hull.Extend(iv);
        sum_sizes += iv.PaperSize();
        return true;
      }));
  if (hull != sf.interval) {
    Box<2> old_box, new_box;
    old_box.lo = {sf.interval.min, static_cast<double>(k)};
    old_box.hi = {sf.interval.max, static_cast<double>(k + 1)};
    new_box.lo = {hull.min, static_cast<double>(k)};
    new_box.hi = {hull.max, static_cast<double>(k + 1)};
    FIELDDB_RETURN_IF_ERROR(tree_->Delete(old_box, k, si));
    FIELDDB_RETURN_IF_ERROR(tree_->Insert(new_box, k, si));
    sf.interval = hull;
  }
  sf.sum_interval_sizes = sum_sizes;
  return Status::OK();
}

Status TemporalFieldDatabase::ApplySnapshotCellValues(
    uint32_t snapshot, CellId id, const std::vector<double>& values) {
  if (snapshot > num_slabs_) {
    return Status::OutOfRange("no such snapshot");
  }
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  const uint64_t pos = pos_of_[id];
  // Snapshot k is the late endpoint (v) of slab k-1 and the early
  // endpoint (u) of slab k; both records must agree on the new samples.
  if (snapshot > 0) {
    FIELDDB_RETURN_IF_ERROR(
        UpdateSlabSide(snapshot - 1, pos, /*u_side=*/false, values));
  }
  if (snapshot < num_slabs_) {
    FIELDDB_RETURN_IF_ERROR(
        UpdateSlabSide(snapshot, pos, /*u_side=*/true, values));
  }
  return Status::OK();
}

Status TemporalFieldDatabase::UpdateSnapshotCellValues(
    uint32_t snapshot, CellId id, const std::vector<double>& values) {
  if (snapshot > num_slabs_) {
    return Status::OutOfRange("no such snapshot");
  }
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  if (slabs_.empty()) return Status::OK();
  // Validate against the record before logging, so only appliable
  // updates ever reach the WAL and replay never meets invalid frames.
  const uint32_t ref_slab = snapshot > 0 ? snapshot - 1 : 0;
  VectorCellRecord rec;
  FIELDDB_RETURN_IF_ERROR(slabs_[ref_slab].store->Get(pos_of_[id], &rec));
  if (values.size() != rec.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(rec.num_vertices) + " values, got " +
        std::to_string(values.size()));
  }
  if (engine_.wal() != nullptr) {
    std::vector<double> payload;
    payload.reserve(values.size() + 1);
    payload.push_back(static_cast<double>(snapshot));
    payload.insert(payload.end(), values.begin(), values.end());
    FIELDDB_RETURN_IF_ERROR(engine_.LogUpdate(id, payload));
  }
  return ApplySnapshotCellValues(snapshot, id, values);
}

PhysicalPlan TemporalFieldDatabase::ChoosePlan(
    uint32_t k, const ValueInterval& band) const {
  const Slab& slab = slabs_[k];
  std::vector<PosRange> runs;
  slab.zones.FilterRanges(band, &runs);
  StoreShape shape;
  shape.num_cells = slab.store->size();
  shape.cells_per_page = slab.store->records_per_page();
  shape.store_pages = slab.store->num_pages();
  const ExtStorePlanner planner(shape,
                                tree_ != nullptr ? tree_->height() : 0);
  return planner.Choose(runs, planner_mode_.load(std::memory_order_relaxed),
                        tree_ != nullptr);
}

PhysicalPlan TemporalFieldDatabase::PlanSnapshotQuery(
    double t, const ValueInterval& band) const {
  const uint32_t k = static_cast<uint32_t>(
      std::min(std::floor(std::max(t, 0.0)), t_max_ - 1.0));
  return ChoosePlan(k, band);
}

void TemporalFieldDatabase::MaybeLogSlowQuery(
    double t, const ValueInterval& band, const QueryStats& stats,
    const PhysicalPlan& plan) const {
  if (engine_.event_log() == nullptr) return;
  const double wall_ms = stats.wall_seconds * 1000.0;
  if (wall_ms < engine_.slow_query_threshold_ms()) return;
  const double observed_disk_ms = DiskModel{}.EstimateMs(
      stats.io.sequential_reads, stats.io.random_reads());
  engine_.LogEvent(EventLog::Event("slow_query")
                       .Add("field_type", "temporal")
                       .Add("wall_ms", wall_ms)
                       .Add("threshold_ms", engine_.slow_query_threshold_ms())
                       .Add("time_t", t)
                       .Add("query_min", band.min)
                       .Add("query_max", band.max)
                       .Add("plan", PlanKindName(plan.kind))
                       .Add("reason", plan.reason)
                       .Add("predicted_cost_ms", plan.predicted_cost_ms)
                       .Add("observed_disk_ms", observed_disk_ms)
                       .Add("candidate_cells", stats.candidate_cells)
                       .Add("answer_cells", stats.answer_cells));
}

Status TemporalFieldDatabase::SnapshotValueQuery(double t,
                                                 const ValueInterval& band,
                                                 ValueQueryResult* out) {
  if (band.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  if (t < 0.0 || t > t_max_) {
    return Status::OutOfRange("time outside [0, T-1]");
  }
  out->region.pieces.clear();
  out->stats = QueryStats{};
  const uint32_t k = static_cast<uint32_t>(
      std::min(std::floor(t), t_max_ - 1.0));
  const double tau = t - k;
  out->plan = ChoosePlan(k, band);
  const IoStats io_before = engine_.pool()->stats();
  const auto t0 = std::chrono::steady_clock::now();

  Status inner = Status::OK();
  const auto visit_cell = [&](uint64_t, const VectorCellRecord& rec) {
    const CellRecord cell = AtTau(rec, tau);
    StatusOr<size_t> pieces = CellIsoband(cell, band, &out->region);
    if (!pieces.ok()) {
      inner = pieces.status();
      return false;
    }
    if (*pieces > 0) {
      ++out->stats.answer_cells;
      out->stats.region_pieces += *pieces;
    }
    return true;
  };

  if (out->plan.kind == PlanKind::kFusedScan) {
    const uint64_t n = slabs_[k].store->size();
    out->stats.candidate_cells = n;
    FIELDDB_RETURN_IF_ERROR(slabs_[k].store->Scan(0, n, visit_cell));
    FIELDDB_RETURN_IF_ERROR(inner);
  } else {
    Box<2> query;
    query.lo = {band.min, t};
    query.hi = {band.max, t};
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    FIELDDB_RETURN_IF_ERROR(
        tree_->Search(query, [&](const RTreeEntry<2>& e) {
          if (e.a == k) {  // integer t also brushes the previous slab
            const Subfield& sf = slabs_[k].subfields[e.b];
            ranges.emplace_back(sf.start, sf.end);
          }
          return true;
        }));
    std::sort(ranges.begin(), ranges.end());

    uint64_t covered_to = 0;
    for (const auto& [start, end] : ranges) {
      const uint64_t begin = std::max(start, covered_to);
      if (begin < end) {
        out->stats.candidate_cells += end - begin;
        FIELDDB_RETURN_IF_ERROR(
            slabs_[k].store->Scan(begin, end, visit_cell));
        FIELDDB_RETURN_IF_ERROR(inner);
      }
      covered_to = std::max(covered_to, end);
    }
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = engine_.pool()->stats() - io_before;
  MaybeLogSlowQuery(t, band, out->stats, out->plan);
  return Status::OK();
}

Status TemporalFieldDatabase::TimeRangeCandidates(
    const ValueInterval& band, double t0, double t1,
    std::vector<CellId>* out) {
  if (band.IsEmpty() || t0 > t1) {
    return Status::InvalidArgument("bad query");
  }
  Box<2> query;
  query.lo = {band.min, std::max(0.0, t0)};
  query.hi = {band.max, std::min(t_max_, t1)};

  std::vector<bool> seen;
  Status inner = Status::OK();
  FIELDDB_RETURN_IF_ERROR(
      tree_->Search(query, [&](const RTreeEntry<2>& e) {
        const Slab& slab = slabs_[e.a];
        const Subfield& sf = slab.subfields[e.b];
        const Status s = slab.store->Scan(
            sf.start, sf.end, [&](uint64_t, const VectorCellRecord& rec) {
              if (seen.empty()) {
                seen.resize(slab.store->size(), false);
              }
              if (!seen[rec.id]) {
                seen[rec.id] = true;
                out->push_back(rec.id);
              }
              return true;
            });
        if (!s.ok()) {
          inner = s;
          return false;
        }
        return true;
      }));
  FIELDDB_RETURN_IF_ERROR(inner);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

StatusOr<WorkloadStats> TemporalFieldDatabase::RunWorkload(
    const std::vector<TemporalSnapshotQuery>& queries) {
  WorkloadStats ws;
  if (queries.empty()) return ws;
  QueryStats total;
  std::vector<double> wall_ms;
  wall_ms.reserve(queries.size());
  ValueQueryResult result;
  for (const TemporalSnapshotQuery& q : queries) {
    FIELDDB_RETURN_IF_ERROR(engine_.pool()->Clear());
    FIELDDB_RETURN_IF_ERROR(SnapshotValueQuery(q.first, q.second, &result));
    total.Accumulate(result.stats);
    wall_ms.push_back(result.stats.wall_seconds * 1000.0);
  }
  FinalizeWorkloadStats(total, &wall_ms, &ws);
  return ws;
}

}  // namespace fielddb

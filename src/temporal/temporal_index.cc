#include "temporal/temporal_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "field/isoband.h"
#include "index/subfield_maintenance.h"

namespace fielddb {

namespace {

// Synthesizes the spatial cell record of a slab record at intra-slab
// time tau in [0, 1] (vertex-wise linear interpolation).
CellRecord AtTau(const VectorCellRecord& rec, double tau) {
  CellRecord cell;
  cell.num_vertices = rec.num_vertices;
  cell.id = rec.id;
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    cell.x[i] = rec.x[i];
    cell.y[i] = rec.y[i];
    cell.w[i] = (1.0 - tau) * rec.u[i] + tau * rec.v[i];
  }
  return cell;
}

// A slab record's value interval over the whole slab.
ValueInterval SlabInterval(const VectorCellRecord& rec) {
  ValueInterval iv = ValueInterval::Empty();
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    iv.Extend(rec.u[i]);
    iv.Extend(rec.v[i]);
  }
  return iv;
}

}  // namespace

StatusOr<std::unique_ptr<TemporalFieldDatabase>>
TemporalFieldDatabase::Build(const TemporalGridField& field,
                             const Options& options) {
  auto db =
      std::unique_ptr<TemporalFieldDatabase>(new TemporalFieldDatabase());
  db->num_slabs_ = field.NumSlabs();
  db->t_max_ = static_cast<double>(field.NumSnapshots() - 1);
  db->file_ = options.page_file_factory
                  ? options.page_file_factory(options.page_size)
                  : std::make_unique<MemPageFile>(options.page_size);
  db->pool_ =
      std::make_unique<BufferPool>(db->file_.get(), options.pool_pages);

  // One shared Hilbert order over the (time-invariant) cell geometry.
  StatusOr<GridField> first = field.Snapshot(0);
  if (!first.ok()) return first.status();
  const std::unique_ptr<SpaceFillingCurve> curve =
      MakeCurve(options.curve, options.curve_order);
  const std::vector<CellId> order = LinearizeCells(*first, *curve);
  db->pos_of_.assign(order.size(), 0);
  for (uint64_t pos = 0; pos < order.size(); ++pos) {
    db->pos_of_[order[pos]] = pos;
  }

  const ValueInterval range = field.ValueRange();
  std::vector<RTreeEntry<2>> entries;

  for (uint32_t k = 0; k < db->num_slabs_; ++k) {
    Slab slab;
    const CellId n = field.NumCells();
    std::vector<VectorCellRecord> records(n);
    std::vector<ValueInterval> intervals(n);
    for (CellId pos = 0; pos < n; ++pos) {
      const CellId id = order[pos];
      const CellRecord geometry = first->GetCell(id);
      VectorCellRecord rec;
      rec.num_vertices = geometry.num_vertices;
      rec.id = id;
      // Vertex grid coordinates of the quad corners.
      const uint32_t ci = id % field.cols();
      const uint32_t cj = id / field.cols();
      const uint32_t vi[4] = {ci, ci + 1, ci + 1, ci};
      const uint32_t vj[4] = {cj, cj, cj + 1, cj + 1};
      for (int corner = 0; corner < 4; ++corner) {
        rec.x[corner] = geometry.x[corner];
        rec.y[corner] = geometry.y[corner];
        rec.u[corner] = field.SampleAt(k, vi[corner], vj[corner]);
        rec.v[corner] = field.SampleAt(k + 1, vi[corner], vj[corner]);
      }
      records[pos] = rec;
      intervals[pos] = SlabInterval(rec);
    }
    StatusOr<RecordStore<VectorCellRecord>> store =
        RecordStore<VectorCellRecord>::Build(db->pool_.get(), records);
    if (!store.ok()) return store.status();
    slab.store = std::make_unique<RecordStore<VectorCellRecord>>(
        std::move(store).value());
    slab.subfields = BuildSubfields(intervals, range, options.cost);

    for (size_t si = 0; si < slab.subfields.size(); ++si) {
      RTreeEntry<2> e;
      e.box.lo = {slab.subfields[si].interval.min,
                  static_cast<double>(k)};
      e.box.hi = {slab.subfields[si].interval.max,
                  static_cast<double>(k + 1)};
      e.a = k;
      e.b = si;
      entries.push_back(e);
    }
    db->total_subfields_ += slab.subfields.size();
    db->slabs_.push_back(std::move(slab));
  }

  // Entries arrive slab-major in Hilbert order — already well packed.
  StatusOr<RStarTree<2>> tree =
      RStarTree<2>::BulkLoad(db->pool_.get(), entries, options.rstar);
  if (!tree.ok()) return tree.status();
  db->tree_ = std::make_unique<RStarTree<2>>(std::move(tree).value());
  db->pool_->ResetStats();
  return db;
}

Status TemporalFieldDatabase::UpdateSlabSide(
    uint32_t k, uint64_t pos, bool u_side,
    const std::vector<double>& values) {
  Slab& slab = slabs_[k];
  VectorCellRecord rec;
  FIELDDB_RETURN_IF_ERROR(slab.store->Get(pos, &rec));
  if (values.size() != rec.num_vertices) {
    return Status::InvalidArgument(
        "expected " + std::to_string(rec.num_vertices) + " values, got " +
        std::to_string(values.size()));
  }
  for (uint32_t i = 0; i < rec.num_vertices; ++i) {
    (u_side ? rec.u : rec.v)[i] = values[i];
  }
  FIELDDB_RETURN_IF_ERROR(slab.store->Put(pos, rec));

  // Refresh the containing subfield's value hull; the time extent
  // [k, k+1] of the tree entry never changes.
  const size_t si = SubfieldContaining(slab.subfields, pos);
  Subfield& sf = slab.subfields[si];
  ValueInterval hull = ValueInterval::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(slab.store->Scan(
      sf.start, sf.end, [&](uint64_t, const VectorCellRecord& member) {
        const ValueInterval iv = SlabInterval(member);
        hull.Extend(iv);
        sum_sizes += iv.PaperSize();
        return true;
      }));
  if (hull != sf.interval) {
    Box<2> old_box, new_box;
    old_box.lo = {sf.interval.min, static_cast<double>(k)};
    old_box.hi = {sf.interval.max, static_cast<double>(k + 1)};
    new_box.lo = {hull.min, static_cast<double>(k)};
    new_box.hi = {hull.max, static_cast<double>(k + 1)};
    FIELDDB_RETURN_IF_ERROR(tree_->Delete(old_box, k, si));
    FIELDDB_RETURN_IF_ERROR(tree_->Insert(new_box, k, si));
    sf.interval = hull;
  }
  sf.sum_interval_sizes = sum_sizes;
  return Status::OK();
}

Status TemporalFieldDatabase::UpdateSnapshotCellValues(
    uint32_t snapshot, CellId id, const std::vector<double>& values) {
  if (snapshot > num_slabs_) {
    return Status::OutOfRange("no such snapshot");
  }
  if (id >= pos_of_.size()) return Status::OutOfRange("no such cell");
  const uint64_t pos = pos_of_[id];
  // Snapshot k is the late endpoint (v) of slab k-1 and the early
  // endpoint (u) of slab k; both records must agree on the new samples.
  if (snapshot > 0) {
    FIELDDB_RETURN_IF_ERROR(
        UpdateSlabSide(snapshot - 1, pos, /*u_side=*/false, values));
  }
  if (snapshot < num_slabs_) {
    FIELDDB_RETURN_IF_ERROR(
        UpdateSlabSide(snapshot, pos, /*u_side=*/true, values));
  }
  return Status::OK();
}

Status TemporalFieldDatabase::SnapshotValueQuery(double t,
                                                 const ValueInterval& band,
                                                 ValueQueryResult* out) {
  if (band.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  if (t < 0.0 || t > t_max_) {
    return Status::OutOfRange("time outside [0, T-1]");
  }
  out->region.pieces.clear();
  out->stats = QueryStats{};
  const IoStats io_before = pool_->stats();
  const auto t0 = std::chrono::steady_clock::now();

  const uint32_t k = static_cast<uint32_t>(
      std::min(std::floor(t), t_max_ - 1.0));
  const double tau = t - k;

  Box<2> query;
  query.lo = {band.min, t};
  query.hi = {band.max, t};
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  FIELDDB_RETURN_IF_ERROR(
      tree_->Search(query, [&](const RTreeEntry<2>& e) {
        if (e.a == k) {  // integer t also brushes the previous slab
          const Subfield& sf = slabs_[k].subfields[e.b];
          ranges.emplace_back(sf.start, sf.end);
        }
        return true;
      }));
  std::sort(ranges.begin(), ranges.end());

  Status inner = Status::OK();
  uint64_t covered_to = 0;
  for (const auto& [start, end] : ranges) {
    const uint64_t begin = std::max(start, covered_to);
    if (begin < end) {
      out->stats.candidate_cells += end - begin;
      FIELDDB_RETURN_IF_ERROR(slabs_[k].store->Scan(
          begin, end, [&](uint64_t, const VectorCellRecord& rec) {
            const CellRecord cell = AtTau(rec, tau);
            StatusOr<size_t> pieces =
                CellIsoband(cell, band, &out->region);
            if (!pieces.ok()) {
              inner = pieces.status();
              return false;
            }
            if (*pieces > 0) {
              ++out->stats.answer_cells;
              out->stats.region_pieces += *pieces;
            }
            return true;
          }));
      FIELDDB_RETURN_IF_ERROR(inner);
    }
    covered_to = std::max(covered_to, end);
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = pool_->stats() - io_before;
  return Status::OK();
}

Status TemporalFieldDatabase::TimeRangeCandidates(
    const ValueInterval& band, double t0, double t1,
    std::vector<CellId>* out) {
  if (band.IsEmpty() || t0 > t1) {
    return Status::InvalidArgument("bad query");
  }
  Box<2> query;
  query.lo = {band.min, std::max(0.0, t0)};
  query.hi = {band.max, std::min(t_max_, t1)};

  std::vector<bool> seen;
  Status inner = Status::OK();
  FIELDDB_RETURN_IF_ERROR(
      tree_->Search(query, [&](const RTreeEntry<2>& e) {
        const Slab& slab = slabs_[e.a];
        const Subfield& sf = slab.subfields[e.b];
        const Status s = slab.store->Scan(
            sf.start, sf.end, [&](uint64_t, const VectorCellRecord& rec) {
              if (seen.empty()) {
                seen.resize(slab.store->size(), false);
              }
              if (!seen[rec.id]) {
                seen[rec.id] = true;
                out->push_back(rec.id);
              }
              return true;
            });
        if (!s.ok()) {
          inner = s;
          return false;
        }
        return true;
      }));
  FIELDDB_RETURN_IF_ERROR(inner);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace fielddb

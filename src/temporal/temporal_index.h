#ifndef FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_
#define FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/field_database.h"
#include "curve/curves.h"
#include "index/subfield.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "temporal/temporal_field.h"
#include "vector/vector_record.h"

namespace fielddb {

/// I-Hilbert lifted to space-time: cells are Hilbert-ordered once; each
/// *time slab* [k, k+1] stores one record per cell carrying the vertex
/// samples at both slab endpoints (time interpolation is linear, so the
/// slab's per-cell value interval is the hull of the endpoint vertex
/// values — exact). Slab subfields are built with the scalar cost
/// function; their entries live in a single 2-D R*-tree over
/// (value-interval x time-interval), so one box query answers both
/// "at time t" and "at any time in [t0, t1]" filtering.
class TemporalFieldDatabase {
 public:
  struct Options {
    CurveType curve = CurveType::kHilbert;
    int curve_order = 16;
    SubfieldCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 2048;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
  };

  static StatusOr<std::unique_ptr<TemporalFieldDatabase>> Build(
      const TemporalGridField& field, const Options& options);

  /// Q2 at a time instant: exact regions where band.min <= F(p, t) <=
  /// band.max. `t` must lie in [0, T-1].
  Status SnapshotValueQuery(double t, const ValueInterval& band,
                            ValueQueryResult* out);

  /// Filtering step over a time range: the cells whose value interval
  /// over any moment of [t0, t1] intersects `band` (no false negatives;
  /// may include slab-level false positives). Cell ids, ascending,
  /// deduplicated.
  Status TimeRangeCandidates(const ValueInterval& band, double t0,
                             double t1, std::vector<CellId>* out);

  /// Replaces the vertex samples of cell `id` at snapshot `snapshot`
  /// (`values.size()` must match the cell's vertex count). A snapshot
  /// borders up to two slabs — [snapshot-1, snapshot] and
  /// [snapshot, snapshot+1] — and both slab records (and their subfield
  /// R*-tree entries) are refreshed.
  Status UpdateSnapshotCellValues(uint32_t snapshot, CellId id,
                                  const std::vector<double>& values);

  uint32_t num_slabs() const { return num_slabs_; }
  uint64_t num_subfields() const { return total_subfields_; }
  BufferPool& pool() { return *pool_; }

 private:
  TemporalFieldDatabase() = default;

  struct Slab {
    std::unique_ptr<RecordStore<VectorCellRecord>> store;
    std::vector<Subfield> subfields;
  };

  /// Rewrites one endpoint (`u_side` = earlier snapshot) of slab `k`'s
  /// record at store position `pos` and refreshes the containing
  /// subfield's tree entry.
  Status UpdateSlabSide(uint32_t k, uint64_t pos, bool u_side,
                        const std::vector<double>& values);

  uint32_t num_slabs_ = 0;
  double t_max_ = 0.0;
  uint64_t total_subfields_ = 0;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<Slab> slabs_;
  std::unique_ptr<RStarTree<2>> tree_;
  /// Store position of each cell id (inverse of the shared Hilbert
  /// order; identical across slabs).
  std::vector<uint64_t> pos_of_;
};

}  // namespace fielddb

#endif  // FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_

#ifndef FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_
#define FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/field_database.h"
#include "core/field_engine.h"
#include "curve/curves.h"
#include "index/subfield.h"
#include "index/zone_sidecar.h"
#include "plan/ext_planner.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "storage/wal.h"
#include "temporal/temporal_field.h"
#include "vector/vector_record.h"

namespace fielddb {

/// A (time, value-band) snapshot query — the workload unit for
/// TemporalFieldDatabase::RunWorkload.
using TemporalSnapshotQuery = std::pair<double, ValueInterval>;

/// I-Hilbert lifted to space-time: cells are Hilbert-ordered once; each
/// *time slab* [k, k+1] stores one record per cell carrying the vertex
/// samples at both slab endpoints (time interpolation is linear, so the
/// slab's per-cell value interval is the hull of the endpoint vertex
/// values — exact). Slab subfields are built with the scalar cost
/// function; their entries live in a single 2-D R*-tree over
/// (value-interval x time-interval), so one box query answers both
/// "at time t" and "at any time in [t0, t1]" filtering.
///
/// Hosted on the shared FieldEngine (core/field_engine.h): storage,
/// WAL-backed updates, crash-safe Save/Open and the event log are the
/// engine's; only the catalog format, the slab layout and the subfield
/// redo logic are temporal-specific.
class TemporalFieldDatabase {
 public:
  struct Options {
    CurveType curve = CurveType::kHilbert;
    int curve_order = 16;
    SubfieldCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 2048;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
    /// Initial access-path policy for snapshot queries (see
    /// ExtStorePlanner).
    PlannerMode planner_mode = PlannerMode::kAuto;
    /// Durability for UpdateSnapshotCellValues (DESIGN.md §14). Requires
    /// `wal_path`; use `<prefix>.wal` for the prefix the database will
    /// be saved under. A logged frame carries the snapshot index as
    /// values[0] followed by the vertex samples.
    WalMode wal_mode = WalMode::kOff;
    std::string wal_path;
    /// Structured operational event log. Empty disables it.
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    /// Bounded-memory build (DESIGN.md §16): when nonzero, the shared
    /// Hilbert linearization sorts (key, cell) pairs with the external
    /// merge sorter under this in-RAM budget. Byte-identical to the
    /// unlimited build.
    size_t build_memory_budget_bytes = 0;
  };

  /// Reopen options, mirroring FieldDatabase::OpenOptions.
  struct OpenOptions {
    size_t pool_pages = 2048;
    WalMode wal_mode = WalMode::kOff;
    /// Optional out-param describing the replay (may be null).
    EngineRecoveryReport* recovery_report = nullptr;
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    PlannerMode planner_mode = PlannerMode::kAuto;
  };

  static StatusOr<std::unique_ptr<TemporalFieldDatabase>> Build(
      const TemporalGridField& field, const Options& options);

  /// Reopens a database persisted by Save; `<prefix>.wal` frames are
  /// replayed first (see OpenOptions::wal_mode).
  static StatusOr<std::unique_ptr<TemporalFieldDatabase>> Open(
      const std::string& prefix);
  static StatusOr<std::unique_ptr<TemporalFieldDatabase>> Open(
      const std::string& prefix, const OpenOptions& options);

  /// Persists the database as `<prefix>.pages` + `<prefix>.meta`
  /// through the engine's crash-safe checkpoint pipeline.
  Status Save(const std::string& prefix);
  Status SaveWithCrashPointForTest(const std::string& prefix,
                                   SnapshotCrashPoint crash_point) {
    return SaveImpl(prefix, crash_point);
  }

  /// Q2 at a time instant: exact regions where band.min <= F(p, t) <=
  /// band.max. `t` must lie in [0, T-1]. `out->plan` records the
  /// planner's decision for the touched slab.
  Status SnapshotValueQuery(double t, const ValueInterval& band,
                            ValueQueryResult* out);

  /// The planner's decision for a snapshot query at `t` under the
  /// current mode, without executing anything (zero I/O: the slab's
  /// zone-map sidecar is in RAM).
  PhysicalPlan PlanSnapshotQuery(double t, const ValueInterval& band) const;

  /// Filtering step over a time range: the cells whose value interval
  /// over any moment of [t0, t1] intersects `band` (no false negatives;
  /// may include slab-level false positives). Cell ids, ascending,
  /// deduplicated.
  Status TimeRangeCandidates(const ValueInterval& band, double t0,
                             double t1, std::vector<CellId>* out);

  /// Replaces the vertex samples of cell `id` at snapshot `snapshot`
  /// (`values.size()` must match the cell's vertex count). A snapshot
  /// borders up to two slabs — [snapshot-1, snapshot] and
  /// [snapshot, snapshot+1] — and both slab records (and their subfield
  /// R*-tree entries and zone-map slots) are refreshed. WAL-logged when
  /// a log is armed.
  Status UpdateSnapshotCellValues(uint32_t snapshot, CellId id,
                                  const std::vector<double>& values);

  /// Flushes and closes the storage (see FieldEngine::Close).
  Status Close() { return engine_.Close(); }
  /// Simulated power cut (tests): everything not fsynced is gone.
  Status SimulateCrashForTest() { return engine_.SimulateCrashForTest(); }

  uint32_t num_slabs() const { return num_slabs_; }
  uint64_t num_subfields() const { return total_subfields_; }
  uint64_t num_cells() const { return pos_of_.size(); }
  BufferPool& pool() { return *engine_.pool(); }
  const ScalarZoneMap& slab_zone_map(uint32_t k) const {
    return slabs_[k].zones;
  }
  WriteAheadLog* wal() const { return engine_.wal(); }
  EventLog* event_log() const { return engine_.event_log(); }
  uint32_t epoch() const { return engine_.epoch(); }

  void set_planner_mode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }
  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }

  /// External-sort build telemetry (0 when the build never spilled).
  uint64_t ext_spill_runs() const { return ext_spill_runs_; }
  uint64_t ext_peak_buffered_bytes() const {
    return ext_peak_buffered_bytes_;
  }

  /// Average stats over a snapshot-query workload (cold cache per
  /// query).
  StatusOr<WorkloadStats> RunWorkload(
      const std::vector<TemporalSnapshotQuery>& queries);

 private:
  TemporalFieldDatabase() = default;

  struct Slab {
    std::unique_ptr<RecordStore<VectorCellRecord>> store;
    std::vector<Subfield> subfields;
    /// In-RAM per-slot slab value intervals: the planner's zero-I/O
    /// selectivity probe (rebuilt on Open, maintained on update).
    ScalarZoneMap zones;
  };

  Status SaveImpl(const std::string& prefix, SnapshotCrashPoint crash_point);

  /// The redo half of an update — shared verbatim by
  /// UpdateSnapshotCellValues and WAL replay, so recovery maintains the
  /// subfield hulls and zone maps exactly like the original mutation.
  Status ApplySnapshotCellValues(uint32_t snapshot, CellId id,
                                 const std::vector<double>& values);

  /// Rewrites one endpoint (`u_side` = earlier snapshot) of slab `k`'s
  /// record at store position `pos` and refreshes the containing
  /// subfield's tree entry plus the slab's zone-map slot.
  Status UpdateSlabSide(uint32_t k, uint64_t pos, bool u_side,
                        const std::vector<double>& values);

  PhysicalPlan ChoosePlan(uint32_t k, const ValueInterval& band) const;
  void MaybeLogSlowQuery(double t, const ValueInterval& band,
                         const QueryStats& stats,
                         const PhysicalPlan& plan) const;

  /// Shared lifecycle core; declared first so the storage outlives the
  /// slab stores and tree at destruction.
  FieldEngine engine_;
  uint32_t num_slabs_ = 0;
  double t_max_ = 0.0;
  uint64_t total_subfields_ = 0;
  std::vector<Slab> slabs_;
  std::unique_ptr<RStarTree<2>> tree_;
  /// Store position of each cell id (inverse of the shared Hilbert
  /// order; identical across slabs).
  std::vector<uint64_t> pos_of_;
  std::atomic<PlannerMode> planner_mode_{PlannerMode::kAuto};
  uint64_t ext_spill_runs_ = 0;
  uint64_t ext_peak_buffered_bytes_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_TEMPORAL_TEMPORAL_INDEX_H_

#include "temporal/temporal_field.h"

#include <cmath>

namespace fielddb {

TemporalGridField::TemporalGridField(
    uint32_t cols, uint32_t rows, const Rect2& domain,
    std::vector<std::vector<double>> snapshots)
    : cols_(cols), rows_(rows), domain_(domain),
      snapshots_(std::move(snapshots)) {
  value_range_ = ValueInterval::Empty();
  for (const auto& snapshot : snapshots_) {
    for (const double w : snapshot) value_range_.Extend(w);
  }
}

StatusOr<TemporalGridField> TemporalGridField::Create(
    uint32_t cols, uint32_t rows, const Rect2& domain,
    std::vector<std::vector<double>> snapshots) {
  if (cols == 0 || rows == 0) {
    return Status::InvalidArgument("grid must have at least one cell");
  }
  if (snapshots.size() < 2) {
    return Status::InvalidArgument("need at least two snapshots");
  }
  const size_t expected =
      static_cast<size_t>(cols + 1) * static_cast<size_t>(rows + 1);
  for (const auto& snapshot : snapshots) {
    if (snapshot.size() != expected) {
      return Status::InvalidArgument("snapshot sample count mismatch");
    }
  }
  return TemporalGridField(cols, rows, domain, std::move(snapshots));
}

StatusOr<GridField> TemporalGridField::Snapshot(uint32_t k) const {
  if (k >= snapshots_.size()) {
    return Status::OutOfRange("no such snapshot");
  }
  return GridField::Create(cols_, rows_, domain_, snapshots_[k]);
}

StatusOr<GridField> TemporalGridField::SnapshotAt(double t) const {
  const double t_max = static_cast<double>(NumSnapshots() - 1);
  if (t < 0.0 || t > t_max) {
    return Status::OutOfRange("time outside [0, T-1]");
  }
  const uint32_t k = static_cast<uint32_t>(
      std::min(std::floor(t), t_max - 1.0));
  const double tau = t - k;
  std::vector<double> samples(snapshots_[k].size());
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] =
        (1.0 - tau) * snapshots_[k][i] + tau * snapshots_[k + 1][i];
  }
  return GridField::Create(cols_, rows_, domain_, std::move(samples));
}

StatusOr<double> TemporalGridField::ValueAt(Point2 p, double t) const {
  StatusOr<GridField> snapshot = SnapshotAt(t);
  if (!snapshot.ok()) return snapshot.status();
  return snapshot->ValueAt(p);
}

}  // namespace fielddb

#ifndef FIELDDB_TEMPORAL_TEMPORAL_FIELD_H_
#define FIELDDB_TEMPORAL_TEMPORAL_FIELD_H_

#include <vector>

#include "common/status.h"
#include "field/grid_field.h"

namespace fielddb {

/// A time-varying scalar field: the paper's spatio-temporal domain
/// (Section 2.1 allows R^d with a temporal coordinate, e.g. (x, y, t))
/// sampled as T snapshots of a shared spatial grid, measured at times
/// 0, 1, ..., T-1 and interpolated linearly in time between them (so the
/// space-time interpolant is trilinear in (x, y, t) and attains extrema
/// at snapshot vertices).
class TemporalGridField {
 public:
  /// `snapshots[k]` holds the (cols+1)*(rows+1) vertex samples at time k.
  /// Needs at least 2 snapshots.
  static StatusOr<TemporalGridField> Create(
      uint32_t cols, uint32_t rows, const Rect2& domain,
      std::vector<std::vector<double>> snapshots);

  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }
  const Rect2& domain() const { return domain_; }
  CellId NumCells() const { return cols_ * rows_; }
  /// Number of snapshots T; valid query times are [0, T-1].
  uint32_t NumSnapshots() const {
    return static_cast<uint32_t>(snapshots_.size());
  }
  /// Number of time slabs (T-1); slab k spans times [k, k+1].
  uint32_t NumSlabs() const { return NumSnapshots() - 1; }

  /// The spatial field at snapshot k (a copy, cheap at our grid sizes).
  StatusOr<GridField> Snapshot(uint32_t k) const;

  /// The spatial field at an arbitrary time t in [0, T-1]: vertex
  /// samples linearly interpolated between the bracketing snapshots.
  StatusOr<GridField> SnapshotAt(double t) const;

  /// Field value at position p and time t.
  StatusOr<double> ValueAt(Point2 p, double t) const;

  /// Vertex sample at (i, j) of snapshot k.
  double SampleAt(uint32_t k, uint32_t i, uint32_t j) const {
    return snapshots_[k][static_cast<size_t>(j) * (cols_ + 1) + i];
  }

  /// Hull of all samples across all snapshots.
  ValueInterval ValueRange() const { return value_range_; }

 private:
  TemporalGridField(uint32_t cols, uint32_t rows, const Rect2& domain,
                    std::vector<std::vector<double>> snapshots);

  uint32_t cols_, rows_;
  Rect2 domain_;
  std::vector<std::vector<double>> snapshots_;
  ValueInterval value_range_;
};

}  // namespace fielddb

#endif  // FIELDDB_TEMPORAL_TEMPORAL_FIELD_H_

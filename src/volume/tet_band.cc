#include "volume/tet_band.h"

#include <algorithm>
#include <cmath>

namespace fielddb {

double TetFractionBelow(std::array<double, 4> values, double t) {
  std::sort(values.begin(), values.end());
  const double a = values[0], b = values[1], c = values[2], d = values[3];
  if (t <= a) return 0.0;
  if (t >= d) return 1.0;
  // The CDF of a linear functional over a uniform tetrahedron is the
  // cubic B-spline CDF with knots (a, b, c, d) (Curry–Schoenberg). The
  // three pieces below are its closed forms, arranged so that repeated
  // knots never divide by zero:
  //  - t in (a, b] forces b > a, and then c-a, d-a >= b-a > 0;
  //  - t in [c, d) forces d > c, and then d-a, d-b >= d-c > 0;
  //  - t in (b, c) forces c > b, and the e = b-a singularity of the raw
  //    truncated-power sum is cancelled analytically (substitute
  //    u = t-a, e = b-a and divide N and D by e), leaving only the
  //    strictly positive factors (c-a)(d-a)(c-b)(d-b).
  if (t <= b) {
    const double f = (t - a) * (t - a) * (t - a) /
                     ((b - a) * (c - a) * (d - a));
    return std::clamp(f, 0.0, 1.0);
  }
  if (t >= c) {
    const double f = 1.0 - (d - t) * (d - t) * (d - t) /
                               ((d - a) * (d - b) * (d - c));
    return std::clamp(f, 0.0, 1.0);
  }
  const double u = t - a;
  const double e = b - a;
  const double ca = c - a, da = d - a, cb = c - b, db = d - b;
  const double f =
      ((3 * u * u - 3 * u * e + e * e) * ca * da -
       u * u * u * (ca + da - e)) /
      (ca * da * cb * db);
  return std::clamp(f, 0.0, 1.0);
}

double TetBandFraction(const std::array<double, 4>& values,
                       const ValueInterval& band) {
  if (band.IsEmpty()) return 0.0;
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo <= 0.0) {
    // Constant tetrahedron: all or nothing (this is where an exact-value
    // query can still return positive volume).
    return band.Contains(lo) ? 1.0 : 0.0;
  }
  return TetFractionBelow(values, band.max) -
         TetFractionBelow(values, band.min);
}

double VoxelBandFraction(const double corners[8],
                         const ValueInterval& band) {
  // Kuhn (Freudenthal) decomposition: one tetrahedron per permutation of
  // the three axes, tracing corner paths 0 -> 7.
  static constexpr int kAxisOrders[6][3] = {{0, 1, 2}, {0, 2, 1},
                                            {1, 0, 2}, {1, 2, 0},
                                            {2, 0, 1}, {2, 1, 0}};
  double total = 0.0;
  for (const auto& order : kAxisOrders) {
    int m = 0;
    std::array<double, 4> values;
    values[0] = corners[0];
    for (int step = 0; step < 3; ++step) {
      m |= 1 << order[step];
      values[step + 1] = corners[m];
    }
    total += TetBandFraction(values, band);
  }
  return total / 6.0;
}

}  // namespace fielddb

#include "volume/volume_field.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace fielddb {

VolumeGridField::VolumeGridField(uint32_t nx, uint32_t ny, uint32_t nz,
                                 std::vector<double> samples)
    : nx_(nx), ny_(ny), nz_(nz), samples_(std::move(samples)) {
  value_range_ = ValueInterval::Empty();
  for (const double w : samples_) value_range_.Extend(w);
}

StatusOr<VolumeGridField> VolumeGridField::Create(
    uint32_t nx, uint32_t ny, uint32_t nz, std::vector<double> samples) {
  if (nx == 0 || ny == 0 || nz == 0) {
    return Status::InvalidArgument("volume must have at least one voxel");
  }
  const size_t expected = static_cast<size_t>(nx + 1) * (ny + 1) * (nz + 1);
  if (samples.size() != expected) {
    return Status::InvalidArgument(
        "expected " + std::to_string(expected) + " samples, got " +
        std::to_string(samples.size()));
  }
  return VolumeGridField(nx, ny, nz, std::move(samples));
}

VoxelRecord VolumeGridField::GetCell(VoxelId id) const {
  const std::array<uint32_t, 3> c = VoxelCoords(id);
  VoxelRecord r;
  r.id = id;
  for (int corner = 0; corner < 8; ++corner) {
    r.w[corner] = SampleAt(c[0] + (corner & 1), c[1] + ((corner >> 1) & 1),
                           c[2] + ((corner >> 2) & 1));
  }
  return r;
}

StatusOr<double> VolumeGridField::ValueAt(double x, double y,
                                          double z) const {
  if (x < 0 || x > 1 || y < 0 || y > 1 || z < 0 || z > 1) {
    return Status::OutOfRange("point outside the unit cube");
  }
  const auto locate = [](double u, uint32_t n, uint32_t* cell,
                         double* frac) {
    const double scaled = u * n;
    *cell = static_cast<uint32_t>(
        std::clamp(std::floor(scaled), 0.0, static_cast<double>(n - 1)));
    *frac = scaled - *cell;
  };
  uint32_t ci, cj, ck;
  double fx, fy, fz;
  locate(x, nx_, &ci, &fx);
  locate(y, ny_, &cj, &fy);
  locate(z, nz_, &ck, &fz);

  double acc = 0.0;
  for (int corner = 0; corner < 8; ++corner) {
    const double wx = (corner & 1) ? fx : 1 - fx;
    const double wy = ((corner >> 1) & 1) ? fy : 1 - fy;
    const double wz = ((corner >> 2) & 1) ? fz : 1 - fz;
    acc += wx * wy * wz *
           SampleAt(ci + (corner & 1), cj + ((corner >> 1) & 1),
                    ck + ((corner >> 2) & 1));
  }
  return acc;
}

StatusOr<VolumeGridField> MakeFractalVolume(
    const VolumeFractalOptions& options) {
  if (options.roughness_h < 0 || options.roughness_h > 1 ||
      options.octaves < 1) {
    return Status::InvalidArgument("bad fractal options");
  }
  const uint32_t nx = options.nx, ny = options.ny, nz = options.nz;
  const size_t total =
      static_cast<size_t>(nx + 1) * (ny + 1) * (nz + 1);
  std::vector<double> samples(total, 0.0);
  Rng rng(options.seed);

  double amplitude = 1.0;
  const double decay = std::pow(2.0, -options.roughness_h);
  for (int octave = 0; octave < options.octaves; ++octave) {
    // Random lattice of period 2^octave cells, trilinearly interpolated
    // onto the sample grid.
    const uint32_t freq = uint32_t{1} << octave;
    const uint32_t lx = std::min(freq, nx) + 1;
    const uint32_t ly = std::min(freq, ny) + 1;
    const uint32_t lz = std::min(freq, nz) + 1;
    std::vector<double> lattice(static_cast<size_t>(lx) * ly * lz);
    for (double& v : lattice) v = rng.NextDouble(-amplitude, amplitude);
    const auto lat = [&](uint32_t i, uint32_t j, uint32_t k) {
      return lattice[(static_cast<size_t>(k) * ly + j) * lx + i];
    };
    size_t s = 0;
    for (uint32_t k = 0; k <= nz; ++k) {
      for (uint32_t j = 0; j <= ny; ++j) {
        for (uint32_t i = 0; i <= nx; ++i, ++s) {
          const double u = static_cast<double>(i) / nx * (lx - 1);
          const double v = static_cast<double>(j) / ny * (ly - 1);
          const double w = static_cast<double>(k) / nz * (lz - 1);
          const uint32_t i0 = std::min(static_cast<uint32_t>(u), lx - 2);
          const uint32_t j0 = std::min(static_cast<uint32_t>(v), ly - 2);
          const uint32_t k0 = std::min(static_cast<uint32_t>(w), lz - 2);
          const double fu = u - i0, fv = v - j0, fw = w - k0;
          double acc = 0.0;
          for (int c = 0; c < 8; ++c) {
            const double wu = (c & 1) ? fu : 1 - fu;
            const double wv = ((c >> 1) & 1) ? fv : 1 - fv;
            const double ww = ((c >> 2) & 1) ? fw : 1 - fw;
            acc += wu * wv * ww *
                   lat(i0 + (c & 1), j0 + ((c >> 1) & 1),
                       k0 + ((c >> 2) & 1));
          }
          samples[s] += acc;
        }
      }
    }
    amplitude *= decay;
  }
  return VolumeGridField::Create(nx, ny, nz, std::move(samples));
}

}  // namespace fielddb

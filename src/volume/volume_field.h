#ifndef FIELDDB_VOLUME_VOLUME_FIELD_H_
#define FIELDDB_VOLUME_VOLUME_FIELD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/interval.h"
#include "common/status.h"

namespace fielddb {

/// Index of a voxel cell in a volume field.
using VoxelId = uint32_t;

/// Self-contained record of one hexahedral cell: its id plus the eight
/// corner samples (order: bit 0 = +x, bit 1 = +y, bit 2 = +z). Geometry
/// is derived from the id and the grid dimensions, which the database
/// retains. The unit stored in the volume cell store.
struct VoxelRecord {
  VoxelId id = 0;
  uint32_t reserved = 0;
  double w[8] = {0, 0, 0, 0, 0, 0, 0, 0};

  ValueInterval Interval() const {
    ValueInterval iv = ValueInterval::Empty();
    for (const double v : w) iv.Extend(v);
    return iv;
  }
};

static_assert(sizeof(VoxelRecord) == 72,
              "VoxelRecord layout is part of the store page format");

/// A 3-D scalar field on a regular hexahedral grid over the unit cube —
/// the paper's "3-D volume field" of hexahedra (Section 2.1): nx*ny*nz
/// cells with samples at the (nx+1)(ny+1)(nz+1) grid vertices and
/// trilinear interpolation inside each cell (extrema at corners, so a
/// cell's value interval is its corner hull). Models e.g. geological
/// structures or ocean temperature at depth.
class VolumeGridField {
 public:
  /// `samples` holds (nx+1)(ny+1)(nz+1) values, x-fastest then y then z.
  static StatusOr<VolumeGridField> Create(uint32_t nx, uint32_t ny,
                                          uint32_t nz,
                                          std::vector<double> samples);

  VoxelId NumCells() const { return nx_ * ny_ * nz_; }
  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }
  uint32_t nz() const { return nz_; }

  double SampleAt(uint32_t i, uint32_t j, uint32_t k) const {
    return samples_[(static_cast<size_t>(k) * (ny_ + 1) + j) * (nx_ + 1) +
                    i];
  }

  /// Voxel (ci, cj, ck) of cell id (x-fastest layout).
  std::array<uint32_t, 3> VoxelCoords(VoxelId id) const {
    return {static_cast<uint32_t>(id % nx_),
            static_cast<uint32_t>((id / nx_) % ny_),
            static_cast<uint32_t>(id / (static_cast<uint64_t>(nx_) * ny_))};
  }

  VoxelRecord GetCell(VoxelId id) const;

  ValueInterval ValueRange() const { return value_range_; }

  /// Trilinear value at (x, y, z) in the unit cube.
  StatusOr<double> ValueAt(double x, double y, double z) const;

  /// Volume of one voxel (the unit cube holds nx*ny*nz of them).
  double VoxelVolume() const {
    return 1.0 / (static_cast<double>(nx_) * ny_ * nz_);
  }

 private:
  VolumeGridField(uint32_t nx, uint32_t ny, uint32_t nz,
                  std::vector<double> samples);

  uint32_t nx_, ny_, nz_;
  std::vector<double> samples_;
  ValueInterval value_range_;
};

/// Generates a 3-D fractal volume by spectral-free midpoint-style value
/// noise: a few octaves of trilinearly-interpolated random lattices with
/// per-octave amplitude 2^-H — the 3-D analogue of the paper's
/// diamond-square terrain. Deterministic in the seed.
struct VolumeFractalOptions {
  uint32_t nx = 32, ny = 32, nz = 32;
  double roughness_h = 0.5;
  int octaves = 5;
  uint64_t seed = 77;
};

StatusOr<VolumeGridField> MakeFractalVolume(
    const VolumeFractalOptions& options);

}  // namespace fielddb

#endif  // FIELDDB_VOLUME_VOLUME_FIELD_H_

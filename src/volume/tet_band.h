#ifndef FIELDDB_VOLUME_TET_BAND_H_
#define FIELDDB_VOLUME_TET_BAND_H_

#include <array>

#include "common/interval.h"

namespace fielddb {

/// Fraction of a tetrahedron's volume where the linear interpolant of
/// the four vertex values is <= t. Uses the truncated-power (simplex
/// B-spline CDF) formula
///   F(t) = sum_{i: v_i < t} (t - v_i)^3 / prod_{j != i} (v_j - v_i),
/// with tiny symbolic perturbation for coincident values. Exact up to
/// floating point for distinct values; continuous in the inputs.
double TetFractionBelow(std::array<double, 4> values, double t);

/// Fraction of a tetrahedron where lo <= w <= hi.
double TetBandFraction(const std::array<double, 4>& values,
                       const ValueInterval& band);

/// Fraction of a hexahedral voxel (corner order: bit0=+x, bit1=+y,
/// bit2=+z) where lo <= w <= hi, under the piecewise-linear reading of
/// the trilinear cell: the voxel is split into the six Kuhn tetrahedra
/// and each contributes its exact linear band fraction. This is the 3-D
/// estimation step — the volume analogue of CellIsoband.
double VoxelBandFraction(const double corners[8], const ValueInterval& band);

}  // namespace fielddb

#endif  // FIELDDB_VOLUME_TET_BAND_H_

#include "volume/volume_index.h"

#include <algorithm>
#include <chrono>

#include "curve/hilbert.h"
#include "index/subfield_maintenance.h"
#include "volume/tet_band.h"

namespace fielddb {

const char* VolumeIndexMethodName(VolumeIndexMethod method) {
  switch (method) {
    case VolumeIndexMethod::kLinearScan:
      return "3D-LinearScan";
    case VolumeIndexMethod::kIHilbert:
      return "3D-I-Hilbert";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<VolumeFieldDatabase>> VolumeFieldDatabase::Build(
    const VolumeGridField& field, const Options& options) {
  auto db = std::unique_ptr<VolumeFieldDatabase>(new VolumeFieldDatabase());
  db->method_ = options.method;
  db->file_ = options.page_file_factory
                  ? options.page_file_factory(options.page_size)
                  : std::make_unique<MemPageFile>(options.page_size);
  db->pool_ =
      std::make_unique<BufferPool>(db->file_.get(), options.pool_pages);
  db->value_range_ = field.ValueRange();
  db->voxel_volume_ = field.VoxelVolume();

  // 3-D Hilbert order over voxel coordinates.
  const uint32_t max_dim =
      std::max({field.nx(), field.ny(), field.nz(), 2u});
  int order = 1;
  while ((uint32_t{1} << order) < max_dim) ++order;

  const VoxelId n = field.NumCells();
  std::vector<std::pair<uint64_t, VoxelId>> keyed(n);
  for (VoxelId id = 0; id < n; ++id) {
    const std::array<uint32_t, 3> c = field.VoxelCoords(id);
    keyed[id] = {HilbertEncodeND(order, {c[0], c[1], c[2]}), id};
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<VoxelRecord> records(n);
  std::vector<ValueInterval> intervals(n);
  db->pos_of_.assign(n, 0);
  for (VoxelId pos = 0; pos < n; ++pos) {
    records[pos] = field.GetCell(keyed[pos].second);
    intervals[pos] = records[pos].Interval();
    db->pos_of_[keyed[pos].second] = pos;
  }
  StatusOr<RecordStore<VoxelRecord>> store =
      RecordStore<VoxelRecord>::Build(db->pool_.get(), records);
  if (!store.ok()) return store.status();
  db->store_ =
      std::make_unique<RecordStore<VoxelRecord>>(std::move(store).value());

  if (options.method == VolumeIndexMethod::kIHilbert) {
    db->subfields_ =
        BuildSubfields(intervals, db->value_range_, options.cost);
    std::vector<RTreeEntry<1>> entries(db->subfields_.size());
    for (size_t i = 0; i < db->subfields_.size(); ++i) {
      entries[i].box = BoxFromInterval(db->subfields_[i].interval);
      entries[i].a = db->subfields_[i].start;
      entries[i].b = db->subfields_[i].end;
    }
    StatusOr<RStarTree<1>> tree =
        RStarTree<1>::BulkLoad(db->pool_.get(), entries, options.rstar);
    if (!tree.ok()) return tree.status();
    db->tree_ = std::make_unique<RStarTree<1>>(std::move(tree).value());
  }
  db->pool_->ResetStats();
  return db;
}

Status VolumeFieldDatabase::UpdateVoxelValues(VoxelId id,
                                              const std::vector<double>& w) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such voxel");
  if (w.size() != 8) {
    return Status::InvalidArgument("expected 8 corner values, got " +
                                   std::to_string(w.size()));
  }
  const uint64_t pos = pos_of_[id];
  VoxelRecord voxel;
  FIELDDB_RETURN_IF_ERROR(store_->Get(pos, &voxel));
  for (int i = 0; i < 8; ++i) voxel.w[i] = w[i];
  FIELDDB_RETURN_IF_ERROR(store_->Put(pos, voxel));
  value_range_.Extend(voxel.Interval());
  if (tree_ == nullptr) return Status::OK();

  // Refresh the containing subfield's interval hull, same maintenance
  // rule as the 2-D scalar index (RefreshSubfieldAfterUpdate).
  const size_t si = SubfieldContaining(subfields_, pos);
  Subfield& sf = subfields_[si];
  ValueInterval hull = ValueInterval::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(store_->Scan(
      sf.start, sf.end, [&](uint64_t, const VoxelRecord& member) {
        const ValueInterval iv = member.Interval();
        hull.Extend(iv);
        sum_sizes += iv.PaperSize();
        return true;
      }));
  if (hull != sf.interval) {
    FIELDDB_RETURN_IF_ERROR(
        tree_->Delete(BoxFromInterval(sf.interval), sf.start, sf.end));
    FIELDDB_RETURN_IF_ERROR(
        tree_->Insert(BoxFromInterval(hull), sf.start, sf.end));
    sf.interval = hull;
  }
  sf.sum_interval_sizes = sum_sizes;
  return Status::OK();
}

Status VolumeFieldDatabase::BandQuery(const ValueInterval& band,
                                      VolumeQueryResult* out) {
  if (band.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  out->volume = 0.0;
  out->stats = QueryStats{};
  const IoStats io_before = pool_->stats();
  const auto t0 = std::chrono::steady_clock::now();

  const auto visit = [&](uint64_t, const VoxelRecord& voxel) {
    if (!voxel.Interval().Intersects(band)) return true;
    const double fraction = VoxelBandFraction(voxel.w, band);
    if (fraction > 0.0) {
      out->volume += fraction * voxel_volume_;
      ++out->stats.answer_cells;
    }
    return true;
  };

  if (tree_ == nullptr) {
    out->stats.candidate_cells = store_->size();
    FIELDDB_RETURN_IF_ERROR(store_->Scan(0, store_->size(), visit));
  } else {
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    FIELDDB_RETURN_IF_ERROR(
        tree_->Search(BoxFromInterval(band), [&](const RTreeEntry<1>& e) {
          ranges.emplace_back(e.a, e.b);
          return true;
        }));
    std::sort(ranges.begin(), ranges.end());
    uint64_t covered_to = 0;
    for (const auto& [start, end] : ranges) {
      const uint64_t begin = std::max(start, covered_to);
      if (begin < end) {
        out->stats.candidate_cells += end - begin;
        FIELDDB_RETURN_IF_ERROR(store_->Scan(begin, end, visit));
      }
      covered_to = std::max(covered_to, end);
    }
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = pool_->stats() - io_before;
  return Status::OK();
}

StatusOr<WorkloadStats> VolumeFieldDatabase::RunWorkload(
    const std::vector<ValueInterval>& queries) {
  WorkloadStats ws;
  ws.num_queries = static_cast<uint32_t>(queries.size());
  if (queries.empty()) return ws;
  QueryStats total;
  VolumeQueryResult result;
  for (const ValueInterval& q : queries) {
    FIELDDB_RETURN_IF_ERROR(pool_->Clear());
    FIELDDB_RETURN_IF_ERROR(BandQuery(q, &result));
    total.Accumulate(result.stats);
  }
  const double n = queries.size();
  ws.avg_wall_ms = total.wall_seconds * 1000.0 / n;
  ws.avg_candidates = static_cast<double>(total.candidate_cells) / n;
  ws.avg_answer_cells = static_cast<double>(total.answer_cells) / n;
  ws.avg_logical_reads = static_cast<double>(total.io.logical_reads) / n;
  ws.avg_physical_reads = static_cast<double>(total.io.physical_reads) / n;
  ws.avg_sequential_reads =
      static_cast<double>(total.io.sequential_reads) / n;
  ws.avg_random_reads = static_cast<double>(total.io.random_reads()) / n;
  return ws;
}

}  // namespace fielddb

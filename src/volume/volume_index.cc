#include "volume/volume_index.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "core/ext_sort.h"
#include "curve/hilbert.h"
#include "index/subfield_maintenance.h"
#include "volume/tet_band.h"

namespace fielddb {

namespace {

constexpr const char* kVolumeMagic = "fielddb-volume-meta-v1";

struct VolumeMetaData {
  uint32_t page_size = 0;
  uint32_t epoch = 0;
  int method = 0;
  uint64_t num_cells = 0;
  PageId store_first_page = 0;
  double voxel_volume = 0.0;
  ValueInterval value_range;
  bool has_tree = false;
  RStarMeta tree;
  std::vector<Subfield> subfields;
  uint64_t declared_subfields = 0;
};

Status WriteVolumeMeta(const std::string& path, const VolumeMetaData& meta) {
  return WriteCatalogFile(path, [&](std::FILE* f) {
    std::fprintf(f, "%s\n", kVolumeMagic);
    std::fprintf(f, "page_size %u\n", meta.page_size);
    std::fprintf(f, "epoch %u\n", meta.epoch);
    std::fprintf(f, "method %d\n", meta.method);
    std::fprintf(f, "num_cells %" PRIu64 "\n", meta.num_cells);
    std::fprintf(f, "store_first_page %" PRIu64 "\n",
                 meta.store_first_page);
    std::fprintf(f, "voxel_volume %.17g\n", meta.voxel_volume);
    std::fprintf(f, "value_range %.17g %.17g\n", meta.value_range.min,
                 meta.value_range.max);
    if (meta.has_tree) {
      std::fprintf(f, "tree %" PRIu64 " %u %" PRIu64 " %" PRIu64 "\n",
                   meta.tree.root, meta.tree.height, meta.tree.size,
                   meta.tree.num_nodes);
    }
    std::fprintf(f, "subfields %zu\n", meta.subfields.size());
    for (const Subfield& sf : meta.subfields) {
      std::fprintf(f, "sf %" PRIu64 " %" PRIu64 " %.17g %.17g %.17g\n",
                   sf.start, sf.end, sf.interval.min, sf.interval.max,
                   sf.sum_interval_sizes);
    }
    return true;
  });
}

Status ValidateVolumeMeta(const VolumeMetaData& meta,
                          const std::string& path) {
  const auto bad = [&](const char* key) {
    return Status::Corruption("catalog " + path + ": invalid value for '" +
                              key + "'");
  };
  if (meta.page_size == 0 || meta.page_size > (1u << 26)) {
    return bad("page_size");
  }
  if (meta.method < 0 ||
      meta.method > static_cast<int>(VolumeIndexMethod::kIHilbert)) {
    return bad("method");
  }
  if (!std::isfinite(meta.voxel_volume) || meta.voxel_volume < 0.0) {
    return bad("voxel_volume");
  }
  if (!std::isfinite(meta.value_range.min) ||
      !std::isfinite(meta.value_range.max) ||
      meta.value_range.min > meta.value_range.max) {
    return bad("value_range");
  }
  if (meta.declared_subfields != meta.subfields.size()) {
    return bad("subfields");
  }
  for (const Subfield& sf : meta.subfields) {
    if (sf.start > sf.end || sf.end > meta.num_cells) return bad("sf");
    if (!std::isfinite(sf.interval.min) ||
        !std::isfinite(sf.interval.max) ||
        sf.interval.min > sf.interval.max ||
        !std::isfinite(sf.sum_interval_sizes)) {
      return bad("sf");
    }
  }
  return Status::OK();
}

StatusOr<VolumeMetaData> ReadVolumeMeta(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot read " + path);
  VolumeMetaData meta;
  char magic[64] = {};
  if (std::fscanf(f, "%63s", magic) != 1 ||
      std::string(magic) != kVolumeMagic) {
    std::fclose(f);
    return Status::Corruption("bad magic in " + path);
  }
  char key[64];
  bool ok = true;
  while (ok && std::fscanf(f, "%63s", key) == 1) {
    const std::string k = key;
    if (k == "page_size") {
      ok = std::fscanf(f, "%u", &meta.page_size) == 1;
    } else if (k == "epoch") {
      ok = std::fscanf(f, "%u", &meta.epoch) == 1;
    } else if (k == "method") {
      ok = std::fscanf(f, "%d", &meta.method) == 1;
    } else if (k == "num_cells") {
      ok = std::fscanf(f, "%" SCNu64, &meta.num_cells) == 1;
    } else if (k == "store_first_page") {
      ok = std::fscanf(f, "%" SCNu64, &meta.store_first_page) == 1;
    } else if (k == "voxel_volume") {
      ok = std::fscanf(f, "%lg", &meta.voxel_volume) == 1;
    } else if (k == "value_range") {
      ok = std::fscanf(f, "%lg %lg", &meta.value_range.min,
                       &meta.value_range.max) == 2;
    } else if (k == "tree") {
      ok = std::fscanf(f, "%" SCNu64 " %u %" SCNu64 " %" SCNu64,
                       &meta.tree.root, &meta.tree.height, &meta.tree.size,
                       &meta.tree.num_nodes) == 4;
      meta.has_tree = true;
    } else if (k == "subfields") {
      ok = std::fscanf(f, "%" SCNu64, &meta.declared_subfields) == 1;
      if (ok && meta.declared_subfields <= (uint64_t{1} << 24)) {
        meta.subfields.reserve(meta.declared_subfields);
      }
    } else if (k == "sf") {
      Subfield sf;
      ok = std::fscanf(f, "%" SCNu64 " %" SCNu64 " %lg %lg %lg", &sf.start,
                       &sf.end, &sf.interval.min, &sf.interval.max,
                       &sf.sum_interval_sizes) == 5;
      meta.subfields.push_back(sf);
    } else {
      ok = false;
    }
  }
  std::fclose(f);
  if (!ok) return Status::Corruption("malformed catalog " + path);
  FIELDDB_RETURN_IF_ERROR(ValidateVolumeMeta(meta, path));
  return meta;
}

}  // namespace

const char* VolumeIndexMethodName(VolumeIndexMethod method) {
  switch (method) {
    case VolumeIndexMethod::kLinearScan:
      return "3D-LinearScan";
    case VolumeIndexMethod::kIHilbert:
      return "3D-I-Hilbert";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<VolumeFieldDatabase>> VolumeFieldDatabase::Build(
    const VolumeGridField& field, const Options& options) {
  auto db = std::unique_ptr<VolumeFieldDatabase>(new VolumeFieldDatabase());
  db->method_ = options.method;
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  FieldEngine::BuildConfig config;
  config.page_size = options.page_size;
  config.pool_pages = options.pool_pages;
  config.page_file_factory = options.page_file_factory;
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForBuild(config));
  BufferPool* const pool = db->engine_.pool();
  db->value_range_ = field.ValueRange();
  db->voxel_volume_ = field.VoxelVolume();

  // 3-D Hilbert order over voxel coordinates. One sorter serves both
  // the in-RAM (budget 0: a single sort) and the bounded-memory
  // (spilled runs + k-way merge) builds; its (key, insertion-seq)
  // tie-break equals the (key, id) order, so both paths emit voxels
  // identically.
  const uint32_t max_dim =
      std::max({field.nx(), field.ny(), field.nz(), 2u});
  int order = 1;
  while ((uint32_t{1} << order) < max_dim) ++order;

  const VoxelId n = field.NumCells();
  ExternalKeyRecordSorter<VoxelId> sorter(
      options.build_memory_budget_bytes);
  for (VoxelId id = 0; id < n; ++id) {
    const std::array<uint32_t, 3> c = field.VoxelCoords(id);
    FIELDDB_RETURN_IF_ERROR(
        sorter.Add(HilbertEncodeND(order, {c[0], c[1], c[2]}), id));
  }

  db->pos_of_.assign(n, 0);
  db->zones_.Reserve(n);
  RecordStoreAppender<VoxelRecord> appender(pool);
  SubfieldStreamBuilder costing(db->value_range_, options.cost);
  FIELDDB_RETURN_IF_ERROR(
      sorter.Merge([&](uint64_t, const VoxelId& id) -> Status {
        const VoxelRecord record = field.GetCell(id);
        db->pos_of_[id] = appender.size();
        FIELDDB_RETURN_IF_ERROR(appender.Append(record));
        const ValueInterval iv = record.Interval();
        db->zones_.Append(iv);
        costing.Add(iv);
        return Status::OK();
      }));
  StatusOr<RecordStore<VoxelRecord>> store = appender.Finish();
  if (!store.ok()) return store.status();
  db->store_ =
      std::make_unique<RecordStore<VoxelRecord>>(std::move(store).value());
  db->ext_spill_runs_ = sorter.spill_runs();
  db->ext_peak_buffered_bytes_ = sorter.peak_buffered_bytes();

  if (options.method == VolumeIndexMethod::kIHilbert) {
    db->subfields_ = costing.Finish();
    std::vector<RTreeEntry<1>> entries(db->subfields_.size());
    for (size_t i = 0; i < db->subfields_.size(); ++i) {
      entries[i].box = BoxFromInterval(db->subfields_[i].interval);
      entries[i].a = db->subfields_[i].start;
      entries[i].b = db->subfields_[i].end;
    }
    StatusOr<RStarTree<1>> tree =
        RStarTree<1>::BulkLoad(pool, entries, options.rstar);
    if (!tree.ok()) return tree.status();
    db->tree_ = std::make_unique<RStarTree<1>>(std::move(tree).value());
  }

  if (options.wal_mode != WalMode::kOff) {
    FIELDDB_RETURN_IF_ERROR(
        db->engine_.ArmWal(options.wal_path, options.wal_mode));
  }
  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    if (options.wal_mode != WalMode::kOff) {
      db->engine_.LogEvent(EventLog::Event("wal_mode_transition")
                               .Add("from", WalModeName(WalMode::kOff))
                               .Add("to", WalModeName(options.wal_mode))
                               .Add("at", "build"));
    }
  }
  pool->ResetStats();
  return db;
}

Status VolumeFieldDatabase::Save(const std::string& prefix) {
  return SaveImpl(prefix, SnapshotCrashPoint::kNone);
}

Status VolumeFieldDatabase::SaveImpl(const std::string& prefix,
                                     SnapshotCrashPoint crash_point) {
  return engine_.SaveSnapshot(
      prefix, crash_point,
      [&](const std::string& meta_tmp_path, uint32_t new_epoch) -> Status {
        VolumeMetaData meta;
        meta.page_size = engine_.file()->page_size();
        meta.epoch = new_epoch;
        meta.method = static_cast<int>(method_);
        meta.num_cells = store_->size();
        meta.store_first_page = store_->first_page();
        meta.voxel_volume = voxel_volume_;
        meta.value_range = value_range_;
        if (tree_ != nullptr) {
          meta.has_tree = true;
          meta.tree = tree_->meta();
        }
        meta.subfields = subfields_;
        return WriteVolumeMeta(meta_tmp_path, meta);
      });
}

StatusOr<std::unique_ptr<VolumeFieldDatabase>> VolumeFieldDatabase::Open(
    const std::string& prefix) {
  return Open(prefix, OpenOptions{});
}

StatusOr<std::unique_ptr<VolumeFieldDatabase>> VolumeFieldDatabase::Open(
    const std::string& prefix, const OpenOptions& options) {
  TryCompleteInterruptedSave(
      prefix, [](const std::string& path) -> StatusOr<uint32_t> {
        StatusOr<VolumeMetaData> m = ReadVolumeMeta(path);
        if (!m.ok()) return m.status();
        return m->epoch;
      });

  StatusOr<VolumeMetaData> meta = ReadVolumeMeta(prefix + ".meta");
  if (!meta.ok()) return meta.status();

  auto db = std::unique_ptr<VolumeFieldDatabase>(new VolumeFieldDatabase());
  db->method_ = static_cast<VolumeIndexMethod>(meta->method);
  db->planner_mode_.store(options.planner_mode, std::memory_order_relaxed);
  db->value_range_ = meta->value_range;
  db->voxel_volume_ = meta->voxel_volume;
  FIELDDB_RETURN_IF_ERROR(db->engine_.InitForOpen(
      prefix, meta->page_size, meta->epoch, options.pool_pages));
  BufferPool* const pool = db->engine_.pool();

  const uint64_t num_pages = db->engine_.file()->NumPages();
  if (meta->num_cells > 0 && meta->store_first_page >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'store_first_page'");
  }
  if (meta->has_tree && meta->tree.root >= num_pages) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: invalid value for 'tree'");
  }
  if (db->method_ == VolumeIndexMethod::kIHilbert && !meta->has_tree) {
    return Status::Corruption("catalog " + prefix +
                              ".meta: missing tree meta");
  }

  StatusOr<RecordStore<VoxelRecord>> store = RecordStore<VoxelRecord>::Attach(
      pool, meta->store_first_page, meta->num_cells);
  if (!store.ok()) return store.status();
  db->store_ =
      std::make_unique<RecordStore<VoxelRecord>>(std::move(store).value());
  db->subfields_ = std::move(meta->subfields);
  if (meta->has_tree) {
    db->tree_ = std::make_unique<RStarTree<1>>(
        RStarTree<1>::Attach(pool, meta->tree));
  }

  // One store pass rebuilds both in-RAM sidecars: the voxel-id ->
  // position map and the zone map the planner probes.
  const uint64_t n = meta->num_cells;
  db->pos_of_.assign(n, ~uint64_t{0});
  db->zones_.Reserve(n);
  FIELDDB_RETURN_IF_ERROR(db->store_->Scan(
      0, n, [&](uint64_t pos, const VoxelRecord& rec) {
        if (rec.id < n) db->pos_of_[rec.id] = pos;
        db->zones_.Append(rec.Interval());
        return true;
      }));
  for (const uint64_t pos : db->pos_of_) {
    if (pos == ~uint64_t{0}) {
      return Status::Corruption("voxel store is missing voxel ids");
    }
  }

  // Recovery: logical redo through the same apply path updates took, so
  // subfield hulls, tree entries and the zone map are maintained.
  EngineRecoveryReport report;
  VolumeFieldDatabase* const raw = db.get();
  FIELDDB_RETURN_IF_ERROR(db->engine_.RecoverFromWal(
      prefix, options.wal_mode,
      [raw](const WalFrame& frame) -> Status {
        return raw->ApplyVoxelValues(static_cast<VoxelId>(frame.cell_id),
                                     frame.values);
      },
      [raw, &prefix]() {
        return raw->SaveImpl(prefix, SnapshotCrashPoint::kNone);
      },
      &report));

  if (!options.event_log_path.empty()) {
    FIELDDB_RETURN_IF_ERROR(db->engine_.AttachEventLog(
        options.event_log_path, options.slow_query_threshold_ms));
    db->engine_.LogRecoveryEvent(report, options.wal_mode);
  }

  pool->ResetStats();
  if (options.recovery_report != nullptr) {
    *options.recovery_report = std::move(report);
  }
  return db;
}

Status VolumeFieldDatabase::UpdateVoxelValues(VoxelId id,
                                              const std::vector<double>& w) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such voxel");
  if (w.size() != 8) {
    return Status::InvalidArgument("expected 8 corner values, got " +
                                   std::to_string(w.size()));
  }
  // Validated above, so only appliable updates reach the log; replay
  // never meets an invalid frame.
  FIELDDB_RETURN_IF_ERROR(engine_.LogUpdate(id, w));
  return ApplyVoxelValues(id, w);
}

Status VolumeFieldDatabase::ApplyVoxelValues(VoxelId id,
                                             const std::vector<double>& w) {
  if (id >= pos_of_.size()) return Status::OutOfRange("no such voxel");
  if (w.size() != 8) {
    return Status::InvalidArgument("expected 8 corner values, got " +
                                   std::to_string(w.size()));
  }
  const uint64_t pos = pos_of_[id];
  VoxelRecord voxel;
  FIELDDB_RETURN_IF_ERROR(store_->Get(pos, &voxel));
  for (int i = 0; i < 8; ++i) voxel.w[i] = w[i];
  FIELDDB_RETURN_IF_ERROR(store_->Put(pos, voxel));
  const ValueInterval iv = voxel.Interval();
  zones_.Set(pos, iv);
  value_range_.Extend(iv);
  if (tree_ == nullptr) return Status::OK();

  // Refresh the containing subfield's interval hull, same maintenance
  // rule as the 2-D scalar index (RefreshSubfieldAfterUpdate).
  const size_t si = SubfieldContaining(subfields_, pos);
  Subfield& sf = subfields_[si];
  ValueInterval hull = ValueInterval::Empty();
  double sum_sizes = 0.0;
  FIELDDB_RETURN_IF_ERROR(store_->Scan(
      sf.start, sf.end, [&](uint64_t, const VoxelRecord& member) {
        const ValueInterval member_iv = member.Interval();
        hull.Extend(member_iv);
        sum_sizes += member_iv.PaperSize();
        return true;
      }));
  if (hull != sf.interval) {
    FIELDDB_RETURN_IF_ERROR(
        tree_->Delete(BoxFromInterval(sf.interval), sf.start, sf.end));
    FIELDDB_RETURN_IF_ERROR(
        tree_->Insert(BoxFromInterval(hull), sf.start, sf.end));
    sf.interval = hull;
  }
  sf.sum_interval_sizes = sum_sizes;
  return Status::OK();
}

PhysicalPlan VolumeFieldDatabase::ChoosePlan(
    const ValueInterval& band) const {
  std::vector<PosRange> runs;
  zones_.FilterRanges(band, &runs);
  StoreShape shape;
  shape.num_cells = store_->size();
  shape.cells_per_page = store_->records_per_page();
  shape.store_pages = store_->num_pages();
  const ExtStorePlanner planner(shape,
                                tree_ != nullptr ? tree_->height() : 0);
  return planner.Choose(runs, planner_mode_.load(std::memory_order_relaxed),
                        tree_ != nullptr);
}

PhysicalPlan VolumeFieldDatabase::PlanBandQuery(
    const ValueInterval& band) const {
  return ChoosePlan(band);
}

void VolumeFieldDatabase::MaybeLogSlowQuery(const ValueInterval& band,
                                            const QueryStats& stats,
                                            const PhysicalPlan& plan) const {
  if (engine_.event_log() == nullptr) return;
  const double wall_ms = stats.wall_seconds * 1000.0;
  if (wall_ms < engine_.slow_query_threshold_ms()) return;
  const double observed_disk_ms = DiskModel{}.EstimateMs(
      stats.io.sequential_reads, stats.io.random_reads());
  engine_.LogEvent(EventLog::Event("slow_query")
                       .Add("field_type", "volume")
                       .Add("wall_ms", wall_ms)
                       .Add("threshold_ms", engine_.slow_query_threshold_ms())
                       .Add("query_min", band.min)
                       .Add("query_max", band.max)
                       .Add("plan", PlanKindName(plan.kind))
                       .Add("reason", plan.reason)
                       .Add("predicted_cost_ms", plan.predicted_cost_ms)
                       .Add("observed_disk_ms", observed_disk_ms)
                       .Add("candidate_cells", stats.candidate_cells)
                       .Add("answer_cells", stats.answer_cells));
}

Status VolumeFieldDatabase::BandQuery(const ValueInterval& band,
                                      VolumeQueryResult* out) {
  if (band.IsEmpty()) {
    return Status::InvalidArgument("empty query band");
  }
  out->volume = 0.0;
  out->stats = QueryStats{};
  out->plan = ChoosePlan(band);
  const IoStats io_before = engine_.pool()->stats();
  const auto t0 = std::chrono::steady_clock::now();

  const auto visit = [&](uint64_t, const VoxelRecord& voxel) {
    if (!voxel.Interval().Intersects(band)) return true;
    const double fraction = VoxelBandFraction(voxel.w, band);
    if (fraction > 0.0) {
      out->volume += fraction * voxel_volume_;
      ++out->stats.answer_cells;
    }
    return true;
  };

  if (out->plan.kind == PlanKind::kFusedScan) {
    out->stats.candidate_cells = store_->size();
    FIELDDB_RETURN_IF_ERROR(store_->Scan(0, store_->size(), visit));
  } else {
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    FIELDDB_RETURN_IF_ERROR(
        tree_->Search(BoxFromInterval(band), [&](const RTreeEntry<1>& e) {
          ranges.emplace_back(e.a, e.b);
          return true;
        }));
    std::sort(ranges.begin(), ranges.end());
    uint64_t covered_to = 0;
    for (const auto& [start, end] : ranges) {
      const uint64_t begin = std::max(start, covered_to);
      if (begin < end) {
        out->stats.candidate_cells += end - begin;
        FIELDDB_RETURN_IF_ERROR(store_->Scan(begin, end, visit));
      }
      covered_to = std::max(covered_to, end);
    }
  }

  out->stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out->stats.io = engine_.pool()->stats() - io_before;
  MaybeLogSlowQuery(band, out->stats, out->plan);
  return Status::OK();
}

StatusOr<WorkloadStats> VolumeFieldDatabase::RunWorkload(
    const std::vector<ValueInterval>& queries) {
  WorkloadStats ws;
  if (queries.empty()) return ws;
  QueryStats total;
  std::vector<double> wall_ms;
  wall_ms.reserve(queries.size());
  VolumeQueryResult result;
  for (const ValueInterval& q : queries) {
    FIELDDB_RETURN_IF_ERROR(engine_.pool()->Clear());
    FIELDDB_RETURN_IF_ERROR(BandQuery(q, &result));
    total.Accumulate(result.stats);
    wall_ms.push_back(result.stats.wall_seconds * 1000.0);
  }
  FinalizeWorkloadStats(total, &wall_ms, &ws);
  return ws;
}

}  // namespace fielddb

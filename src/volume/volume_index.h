#ifndef FIELDDB_VOLUME_VOLUME_INDEX_H_
#define FIELDDB_VOLUME_VOLUME_INDEX_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/stats.h"
#include "index/subfield.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "volume/volume_field.h"

namespace fielddb {

/// Query-processing methods for volume fields.
enum class VolumeIndexMethod {
  kLinearScan,
  kIHilbert,  // 3-D Hilbert linearization + 1-D subfield R*-tree
};

const char* VolumeIndexMethodName(VolumeIndexMethod method);

/// Result of a 3-D value query: the measure (volume) of the region where
/// the field value lies in the band, plus the contributing voxels.
struct VolumeQueryResult {
  double volume = 0.0;
  QueryStats stats;
};

/// The I-Hilbert method lifted to 3-D volume fields (the paper
/// generalizes the Hilbert curve to higher dimensionalities via [2]):
/// voxels are linearized by the 3-D Hilbert value of their coordinates,
/// stored in that order, grouped into subfields with the *same* scalar
/// cost function (values are still scalar — only the domain gained a
/// dimension), and the subfield intervals indexed in a 1-D R*-tree.
class VolumeFieldDatabase {
 public:
  struct Options {
    VolumeIndexMethod method = VolumeIndexMethod::kIHilbert;
    SubfieldCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 1024;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
  };

  static StatusOr<std::unique_ptr<VolumeFieldDatabase>> Build(
      const VolumeGridField& field, const Options& options);

  /// Band query: total volume where band.min <= w <= band.max (under the
  /// piecewise-linear Kuhn-tetrahedra reading), with per-query stats.
  Status BandQuery(const ValueInterval& band, VolumeQueryResult* out);

  /// Replaces the 8 corner samples of voxel `id`. I-Hilbert refreshes
  /// the containing subfield's interval hull (and its R*-tree entry).
  Status UpdateVoxelValues(VoxelId id, const std::vector<double>& w);

  const std::vector<Subfield>& subfields() const { return subfields_; }
  uint64_t num_cells() const { return store_->size(); }
  const ValueInterval& value_range() const { return value_range_; }
  BufferPool& pool() { return *pool_; }

  /// Average stats over a query workload (cold cache per query).
  StatusOr<WorkloadStats> RunWorkload(
      const std::vector<ValueInterval>& queries);

 private:
  VolumeFieldDatabase() = default;

  VolumeIndexMethod method_ = VolumeIndexMethod::kIHilbert;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<RecordStore<VoxelRecord>> store_;
  std::unique_ptr<RStarTree<1>> tree_;  // null for LinearScan
  std::vector<Subfield> subfields_;
  ValueInterval value_range_;
  double voxel_volume_ = 0.0;
  /// Store position of each voxel id (inverse of the Hilbert sort).
  std::vector<uint64_t> pos_of_;
};

}  // namespace fielddb

#endif  // FIELDDB_VOLUME_VOLUME_INDEX_H_

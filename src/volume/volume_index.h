#ifndef FIELDDB_VOLUME_VOLUME_INDEX_H_
#define FIELDDB_VOLUME_VOLUME_INDEX_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/field_engine.h"
#include "core/stats.h"
#include "index/subfield.h"
#include "index/zone_sidecar.h"
#include "plan/ext_planner.h"
#include "rtree/rstar_tree.h"
#include "storage/page_file.h"
#include "storage/record_store.h"
#include "storage/wal.h"
#include "volume/volume_field.h"

namespace fielddb {

/// Query-processing methods for volume fields.
enum class VolumeIndexMethod {
  kLinearScan,
  kIHilbert,  // 3-D Hilbert linearization + 1-D subfield R*-tree
};

const char* VolumeIndexMethodName(VolumeIndexMethod method);

/// Result of a 3-D value query: the measure (volume) of the region where
/// the field value lies in the band, plus the contributing voxels.
struct VolumeQueryResult {
  double volume = 0.0;
  QueryStats stats;
  /// The planner's decision this query executed: zone-map probe +
  /// disk-model costing (plan/ext_planner.h), same selection the grid
  /// planner makes.
  PhysicalPlan plan;
};

/// The I-Hilbert method lifted to 3-D volume fields (the paper
/// generalizes the Hilbert curve to higher dimensionalities via [2]):
/// voxels are linearized by the 3-D Hilbert value of their coordinates,
/// stored in that order, grouped into subfields with the *same* scalar
/// cost function (values are still scalar — only the domain gained a
/// dimension), and the subfield intervals indexed in a 1-D R*-tree.
///
/// Hosted on the shared FieldEngine (core/field_engine.h): storage,
/// WAL-backed updates, crash-safe Save/Open and the event log are the
/// engine's; only the catalog format, the voxel record layout and the
/// subfield redo logic are volume-specific.
class VolumeFieldDatabase {
 public:
  struct Options {
    VolumeIndexMethod method = VolumeIndexMethod::kIHilbert;
    SubfieldCostConfig cost;
    uint32_t page_size = kDefaultPageSize;
    size_t pool_pages = 1024;
    RStarOptions rstar;
    /// Backing page file (defaults to MemPageFile). Fault-injection
    /// tests wrap the file to schedule faults against the live database.
    std::function<std::unique_ptr<PageFile>(uint32_t page_size)>
        page_file_factory;
    /// Initial access-path policy for band queries (see ExtStorePlanner).
    PlannerMode planner_mode = PlannerMode::kAuto;
    /// Durability for UpdateVoxelValues (DESIGN.md §14): every update is
    /// logged before it is applied and Open replays the log. Requires
    /// `wal_path`; use `<prefix>.wal` for the prefix the database will
    /// be saved under.
    WalMode wal_mode = WalMode::kOff;
    std::string wal_path;
    /// Structured operational event log (slow queries, recovery). Empty
    /// disables it.
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    /// Bounded-memory build (DESIGN.md §16): when nonzero, the 3-D
    /// Hilbert linearization sorts (key, voxel) pairs with the external
    /// merge sorter under this in-RAM budget, spilling sorted runs to
    /// temp files; the merge streams into the store appender and the
    /// subfield costing. Byte-identical to the unlimited build.
    size_t build_memory_budget_bytes = 0;
  };

  /// Reopen options, mirroring FieldDatabase::OpenOptions.
  struct OpenOptions {
    size_t pool_pages = 1024;
    WalMode wal_mode = WalMode::kOff;
    /// Optional out-param describing the replay (may be null).
    EngineRecoveryReport* recovery_report = nullptr;
    std::string event_log_path;
    double slow_query_threshold_ms = 25.0;
    PlannerMode planner_mode = PlannerMode::kAuto;
  };

  static StatusOr<std::unique_ptr<VolumeFieldDatabase>> Build(
      const VolumeGridField& field, const Options& options);

  /// Reopens a database persisted by Save; `<prefix>.wal` frames are
  /// replayed first (see OpenOptions::wal_mode).
  static StatusOr<std::unique_ptr<VolumeFieldDatabase>> Open(
      const std::string& prefix);
  static StatusOr<std::unique_ptr<VolumeFieldDatabase>> Open(
      const std::string& prefix, const OpenOptions& options);

  /// Persists the database as `<prefix>.pages` + `<prefix>.meta`
  /// through the engine's crash-safe checkpoint pipeline.
  Status Save(const std::string& prefix);
  Status SaveWithCrashPointForTest(const std::string& prefix,
                                   SnapshotCrashPoint crash_point) {
    return SaveImpl(prefix, crash_point);
  }

  /// Band query: total volume where band.min <= w <= band.max (under the
  /// piecewise-linear Kuhn-tetrahedra reading), with per-query stats and
  /// the executed plan.
  Status BandQuery(const ValueInterval& band, VolumeQueryResult* out);

  /// The planner's decision for `band` under the current mode, without
  /// executing anything (zero I/O: the zone-map sidecar is in RAM).
  PhysicalPlan PlanBandQuery(const ValueInterval& band) const;

  /// Replaces the 8 corner samples of voxel `id`, WAL-logged when a log
  /// is armed. I-Hilbert refreshes the containing subfield's interval
  /// hull (and its R*-tree entry); the zone-map sidecar slot is updated
  /// either way.
  Status UpdateVoxelValues(VoxelId id, const std::vector<double>& w);

  /// Flushes and closes the storage (see FieldEngine::Close).
  Status Close() { return engine_.Close(); }
  /// Simulated power cut (tests): everything not fsynced is gone.
  Status SimulateCrashForTest() { return engine_.SimulateCrashForTest(); }

  const std::vector<Subfield>& subfields() const { return subfields_; }
  uint64_t num_cells() const { return store_->size(); }
  const ValueInterval& value_range() const { return value_range_; }
  VolumeIndexMethod method() const { return method_; }
  BufferPool& pool() { return *engine_.pool(); }
  const ScalarZoneMap& zone_map() const { return zones_; }
  WriteAheadLog* wal() const { return engine_.wal(); }
  EventLog* event_log() const { return engine_.event_log(); }
  uint32_t epoch() const { return engine_.epoch(); }

  void set_planner_mode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }
  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }

  /// External-sort build telemetry (0 when the build never spilled).
  uint64_t ext_spill_runs() const { return ext_spill_runs_; }
  uint64_t ext_peak_buffered_bytes() const {
    return ext_peak_buffered_bytes_;
  }

  /// Average stats over a query workload (cold cache per query).
  StatusOr<WorkloadStats> RunWorkload(
      const std::vector<ValueInterval>& queries);

 private:
  VolumeFieldDatabase() = default;

  Status SaveImpl(const std::string& prefix, SnapshotCrashPoint crash_point);

  /// The redo half of an update — shared verbatim by UpdateVoxelValues
  /// and WAL replay, so recovery maintains the subfield hulls and zone
  /// map exactly like the original mutation did.
  Status ApplyVoxelValues(VoxelId id, const std::vector<double>& w);

  PhysicalPlan ChoosePlan(const ValueInterval& band) const;
  void MaybeLogSlowQuery(const ValueInterval& band, const QueryStats& stats,
                         const PhysicalPlan& plan) const;

  /// Shared lifecycle core; declared first so the storage outlives the
  /// store and tree at destruction.
  FieldEngine engine_;
  VolumeIndexMethod method_ = VolumeIndexMethod::kIHilbert;
  std::unique_ptr<RecordStore<VoxelRecord>> store_;
  std::unique_ptr<RStarTree<1>> tree_;  // null for LinearScan
  std::vector<Subfield> subfields_;
  /// In-RAM per-slot value intervals: the planner's zero-I/O
  /// selectivity probe (rebuilt on Open, maintained on update).
  ScalarZoneMap zones_;
  ValueInterval value_range_;
  double voxel_volume_ = 0.0;
  /// Store position of each voxel id (inverse of the Hilbert sort).
  std::vector<uint64_t> pos_of_;
  std::atomic<PlannerMode> planner_mode_{PlannerMode::kAuto};
  uint64_t ext_spill_runs_ = 0;
  uint64_t ext_peak_buffered_bytes_ = 0;
};

}  // namespace fielddb

#endif  // FIELDDB_VOLUME_VOLUME_INDEX_H_
